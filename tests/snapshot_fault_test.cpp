// The fault-injection differential harness (the PR's acceptance bar):
// for EVERY injected fault class — short write, failed fsync, silent bit
// flip, silent truncation, failed rename — at every byte-offset class of
// the snapshot file, a save-under-fault followed by a restore must land in
// exactly one of two places:
//
//   * the post-crash state (the fault was harmless or never fired), or
//   * a clean typed failure of the damaged generation with fallback to the
//     last good one — after which re-ingesting the lost window reproduces
//     the post-crash state bit-for-bit.
//
// Never a third thing.  "Silently-wrong state" here means: the restored
// builder's canonical encoding differs from BOTH endpoint states — the
// outcome this suite exists to prove impossible.  Runs under ASan+UBSan in
// tools/check.sh's snapshot-faults stage.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "core/streaming_dataset.hpp"
#include "p2p/churn.hpp"
#include "pipeline_fixture.hpp"
#include "util/file.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;
using util::FileFault;
using util::Status;

/// Deterministic seed for the offset/bit sampling below — the harness must
/// replay identically across runs and sanitizers.
constexpr std::uint64_t kHarnessSeed = 20100517;  // the paper's venue date

struct FaultWorld {
  const testing::PipelineFixture& f = shared_fixture();
  core::DatasetConfig config = [] {
    auto dataset_config = shared_fixture().pipeline.config().dataset;
    dataset_config.min_peers_per_as = 300;
    return dataset_config;
  }();
  core::DatasetBuilder builder{f.primary, f.secondary, f.mapper, config};
  p2p::LongitudinalResult churn = [this] {
    p2p::CrawlerConfig crawl_config;
    crawl_config.seed = 77;
    crawl_config.coverage = 0.05;
    p2p::ChurnConfig churn_config;
    churn_config.seed = 2009;
    churn_config.windows = 2;
    churn_config.lease_survival = 0.6;
    return p2p::longitudinal_crawl(f.eco, f.gaz, crawl_config, churn_config);
  }();
  /// Truncated windows: the harness runs ~50 save/restore scenarios, so the
  /// per-scenario ingest cost is kept small without losing bucket variety.
  std::span<const p2p::PeerSample> window_a =
      std::span<const p2p::PeerSample>{churn.windows[0]}.first(
          std::min<std::size_t>(churn.windows[0].size(), 400));
  std::span<const p2p::PeerSample> window_b =
      std::span<const p2p::PeerSample>{churn.windows[1]}.first(
          std::min<std::size_t>(churn.windows[1].size(), 400));

  [[nodiscard]] core::StreamingDatasetBuilder streaming() const {
    return builder.streaming();
  }
};

const FaultWorld& fault_world() {
  static const FaultWorld instance;
  return instance;
}

[[nodiscard]] std::vector<std::byte> state_bytes(
    const core::StreamingDatasetBuilder& builder) {
  return core::SnapshotCodec::encode(builder, 0);
}

[[nodiscard]] std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "eyeball_snapshot_fault_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// One save-under-fault / restore / recover scenario.  Returns the number
/// of silent-corruption outcomes observed (the harness sums these and
/// demands zero).
[[nodiscard]] std::size_t run_scenario(const FaultWorld& w, const FileFault& fault,
                                       bool fail_rename, const std::string& dir_name) {
  const std::string dir = scratch_dir(dir_name);
  auto& clean_fs = util::local_filesystem();
  const std::string label =
      std::string{util::to_string(fault.kind)} + " offset=" +
      std::to_string(fault.offset) + (fail_rename ? " rename" : "");

  // State A: one window, snapshotted cleanly (generation 1).
  auto builder = w.streaming();
  builder.ingest(w.window_a, 1);
  EXPECT_TRUE(builder.save_snapshot(dir, clean_fs).ok()) << label;
  const auto state_a = state_bytes(builder);

  // State B: the next window arrives, then the snapshot attempt hits the
  // injected fault (generation 2).
  builder.ingest(w.window_b, 1);
  const auto state_b = state_bytes(builder);

  util::FaultInjectingFileSystem faulty_fs{clean_fs};
  if (fail_rename) {
    faulty_fs.fail_next_rename();
  } else {
    faulty_fs.arm(fault);
  }
  const Status save_status = builder.save_snapshot(dir, faulty_fs);

  // "Process restart": a fresh builder restores from the directory.  The
  // clean generation 1 is always on disk, so restore as a whole must
  // succeed whatever happened to generation 2.
  auto restored = w.streaming();
  core::SnapshotRestoreInfo info;
  const Status restore_status = restored.restore_snapshot(dir, clean_fs, &info);
  EXPECT_TRUE(restore_status.ok()) << label << ": " << restore_status;
  if (!restore_status.ok()) return 1;

  const auto restored_state = state_bytes(restored);
  const bool is_a = restored_state == state_a;
  const bool is_b = restored_state == state_b;

  // The differential oracle.
  if (!is_a && !is_b) {
    ADD_FAILURE() << label << ": restored state matches NEITHER endpoint — "
                     "silently-wrong state loaded";
    return 1;
  }
  if (save_status.ok() && !faulty_fs.fault_fired()) {
    // The fault never triggered (offset beyond the file): the save was
    // genuinely clean and must have published state B as generation 2.
    EXPECT_TRUE(is_b) << label << ": clean save did not round-trip";
    EXPECT_EQ(info.generation, 2u) << label;
  }
  if (!save_status.ok()) {
    // Reported failure: nothing was published (atomic-write protocol), so
    // the fallback is generation 1 with no skipped files.
    EXPECT_TRUE(is_a) << label << ": failed save leaked state";
    EXPECT_EQ(info.generation, 1u) << label;
    EXPECT_EQ(info.generations_skipped, 0u) << label;
  }
  if (save_status.ok() && faulty_fs.fault_fired()) {
    // Silent fault: a damaged generation 2 was published.  Restore must
    // have detected it (CRC/size/magic) and fallen back — is_b would mean
    // the flip/truncation survived validation, which the format rules out.
    EXPECT_TRUE(is_a) << label << ": silent fault loaded damaged state";
    EXPECT_EQ(info.generation, 1u) << label;
    EXPECT_EQ(info.generations_skipped, 1u) << label;
  }

  // Recovery: re-ingesting the window the crash lost reproduces the
  // post-crash state bit-for-bit (the fallback is OPERABLE, not just safe).
  if (is_a) {
    restored.ingest(w.window_b, 1);
    EXPECT_EQ(state_bytes(restored), state_b) << label << ": recovery diverged";
    if (state_bytes(restored) != state_b) return 1;
  }
  return 0;
}

TEST(SnapshotFaults, EveryFaultClassAtEveryOffsetClassIsSafe) {
  const auto& w = fault_world();

  // Probe the snapshot size once to place the offset classes: header bytes,
  // section headers, payload interior, footer CRC, tail magic — plus
  // rng-drawn interior offsets so reruns of the suite under different
  // sanitizers still sweep identical, reproducible positions.
  auto probe = w.streaming();
  probe.ingest(w.window_a, 1);
  probe.ingest(w.window_b, 1);
  const std::size_t file_size = core::SnapshotCodec::encode(probe, 2).size();
  ASSERT_GT(file_size, 64u);

  util::Rng rng{kHarnessSeed};
  std::vector<std::uint64_t> offsets = {
      0,              // head magic
      9,              // format version
      13,             // generation
      21,             // config fingerprint
      31,             // last header byte
      32,             // first section header
      file_size / 2,  // payload interior
      file_size - 13, // last body byte
      file_size - 12, // footer CRC
      file_size - 1,  // tail magic
  };
  for (int i = 0; i < 3; ++i) offsets.push_back(rng.uniform_index(file_size));

  const FileFault::Kind kinds[] = {
      FileFault::Kind::kShortWrite,
      FileFault::Kind::kFailedSync,
      FileFault::Kind::kBitFlip,
      FileFault::Kind::kTruncate,
  };

  std::size_t silent_corruptions = 0;
  std::size_t scenario = 0;
  for (const FileFault::Kind kind : kinds) {
    for (const std::uint64_t offset : offsets) {
      FileFault fault;
      fault.kind = kind;
      fault.offset = offset;
      fault.bit = static_cast<std::uint32_t>(rng.uniform_index(8));
      silent_corruptions +=
          run_scenario(w, fault, /*fail_rename=*/false,
                       "scenario_" + std::to_string(scenario++));
    }
  }
  // The acceptance criterion, stated as a number.
  EXPECT_EQ(silent_corruptions, 0u);
}

TEST(SnapshotFaults, FailedRenameNeverPublishes) {
  const auto& w = fault_world();
  EXPECT_EQ(run_scenario(w, FileFault{}, /*fail_rename=*/true, "rename"), 0u);
}

TEST(SnapshotFaults, FaultBeyondTheFileIsACleanSave) {
  const auto& w = fault_world();
  // Offset past everything: the armed fault must never fire and the save
  // must round-trip as a normal one (the harness's is_b branch).
  FileFault fault;
  fault.kind = FileFault::Kind::kBitFlip;
  fault.offset = std::uint64_t{1} << 40;
  EXPECT_EQ(run_scenario(w, fault, /*fail_rename=*/false, "beyond"), 0u);
}

}  // namespace
}  // namespace eyeball
