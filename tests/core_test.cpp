#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "util/rng.hpp"
#include "core/dataset.hpp"
#include "core/multi_bandwidth.hpp"
#include "core/pipeline.hpp"
#include "pipeline_fixture.hpp"
#include "util/stats.hpp"

namespace eyeball::core {
namespace {

using eyeball::testing::shared_fixture;

// ---- Dataset conditioning (§2) ----

TEST(Dataset, StatsAccountForEverySample) {
  const auto& f = shared_fixture();
  const auto& stats = f.dataset.stats();
  EXPECT_EQ(stats.raw_samples, f.crawl.samples.size());
  EXPECT_EQ(stats.raw_samples, stats.missing_geo + stats.high_error + stats.unmapped_as +
                                   stats.peers_in_small_ases + stats.final_peers);
  EXPECT_GT(stats.final_ases, 0u);
  EXPECT_GT(stats.final_peers, 0u);
}

TEST(Dataset, EveryAsMeetsMinimumPeers) {
  const auto& f = shared_fixture();
  for (const auto& as : f.dataset.ases()) {
    EXPECT_GE(as.peers.size(), f.pipeline.config().dataset.min_peers_per_as);
  }
}

TEST(Dataset, GeoErrorFilterHolds) {
  const auto& f = shared_fixture();
  const double cap = f.pipeline.config().dataset.max_geo_error_km;
  for (const auto& as : f.dataset.ases()) {
    for (const auto& peer : as.peers) {
      EXPECT_LE(peer.geo_error_km, cap);
    }
  }
}

TEST(Dataset, P90ErrorRuleHolds) {
  const auto& f = shared_fixture();
  for (const auto& as : f.dataset.ases()) {
    const auto errors = as.geo_errors();
    EXPECT_LE(util::percentile(errors, 90.0),
              f.pipeline.config().dataset.max_p90_geo_error_km);
  }
}

TEST(Dataset, PeersMapToTheirAs) {
  const auto& f = shared_fixture();
  for (const auto& as : f.dataset.ases()) {
    std::size_t checked = 0;
    for (const auto& peer : as.peers) {
      EXPECT_EQ(f.rib.origin(peer.ip), as.asn);
      if (++checked > 20) break;
    }
  }
}

TEST(Dataset, OnlyEyeballAsesSurvive) {
  const auto& f = shared_fixture();
  for (const auto& as : f.dataset.ases()) {
    EXPECT_EQ(f.eco.at(as.asn).role, topology::AsRole::kEyeball);
  }
}

TEST(Dataset, FindWorks) {
  const auto& f = shared_fixture();
  ASSERT_FALSE(f.dataset.ases().empty());
  const auto asn = f.dataset.ases()[0].asn;
  EXPECT_NE(f.dataset.find(asn), nullptr);
  EXPECT_EQ(f.dataset.find(net::Asn{4294900000u}), nullptr);
}

TEST(Dataset, TighterErrorThresholdKeepsFewerPeers) {
  const auto& f = shared_fixture();
  DatasetConfig strict;
  strict.max_geo_error_km = 20.0;
  const DatasetBuilder builder{f.primary, f.secondary, f.mapper, strict};
  const auto strict_dataset = builder.build(f.crawl.samples);
  EXPECT_LT(strict_dataset.stats().final_peers, f.dataset.stats().final_peers);
  EXPECT_GT(strict_dataset.stats().high_error, f.dataset.stats().high_error);
}

TEST(Dataset, HigherMinPeersKeepsFewerAses) {
  const auto& f = shared_fixture();
  DatasetConfig strict;
  strict.min_peers_per_as = 5000;
  const DatasetBuilder builder{f.primary, f.secondary, f.mapper, strict};
  const auto strict_dataset = builder.build(f.crawl.samples);
  EXPECT_LE(strict_dataset.stats().final_ases, f.dataset.stats().final_ases);
}

TEST(AsPeerSet, AccessorsConsistent) {
  const auto& f = shared_fixture();
  const auto& as = f.dataset.ases()[0];
  EXPECT_EQ(as.locations().size(), as.peers.size());
  EXPECT_EQ(as.geo_errors().size(), as.peers.size());
  std::size_t total = 0;
  for (const auto app : p2p::kAllApps) total += as.count_for(app);
  EXPECT_EQ(total, as.peers.size());
}

TEST(AsPeerSet, GeoErrorsScratchOverloadMatchesAndReuses) {
  const auto& f = shared_fixture();
  std::vector<double> scratch{1.0, 2.0, 3.0};  // stale content must be cleared
  for (const auto& as : f.dataset.ases()) {
    as.geo_errors(scratch);
    EXPECT_EQ(scratch, as.geo_errors());
  }
}

TEST(AsPeerSet, GeoErrorsScratchOverloadExactValuesAndOrder) {
  AsPeerSet as;
  as.asn = net::Asn{64500};
  for (const double error : {12.5, 0.0, 79.9}) {
    PeerRecord peer;
    peer.geo_error_km = error;
    as.peers.push_back(peer);
  }
  std::vector<double> scratch{-1.0};
  as.geo_errors(scratch);
  EXPECT_EQ(scratch, (std::vector<double>{12.5, 0.0, 79.9}));  // peer order kept
  EXPECT_EQ(scratch, as.geo_errors());
}

TEST(AsPeerSet, GeoErrorsScratchOverloadClearsForEmptySet) {
  // The p90 filter reuses one scratch buffer across ASes; an empty AS must
  // leave it empty, not holding the previous AS's errors.
  const AsPeerSet empty;
  std::vector<double> scratch{5.0, 6.0};
  empty.geo_errors(scratch);
  EXPECT_TRUE(scratch.empty());
  EXPECT_TRUE(empty.geo_errors().empty());
}

TEST(Dataset, FindAgreesWithLinearScan) {
  const auto& f = shared_fixture();
  const auto scan = [&](net::Asn asn) -> const AsPeerSet* {
    for (const auto& as : f.dataset.ases()) {
      if (as.asn == asn) return &as;
    }
    return nullptr;
  };
  for (const auto& as : f.dataset.ases()) {
    EXPECT_EQ(f.dataset.find(as.asn), scan(as.asn));
  }
  // Probe ASNs around every present one so misses exercise both lower_bound
  // outcomes (between entries and past the end).
  for (const auto& as : f.dataset.ases()) {
    const auto value = net::value_of(as.asn);
    for (const auto probe : {net::Asn{value - 1}, net::Asn{value + 1}}) {
      EXPECT_EQ(f.dataset.find(probe), scan(probe)) << value;
    }
  }
  EXPECT_EQ(f.dataset.find(net::Asn{4294900000u}), nullptr);
}

TEST(Dataset, FindReturnsFirstOfDuplicateAsns) {
  AsPeerSet first;
  first.asn = net::Asn{7};
  first.peers.push_back({net::Ipv4Address{1}, p2p::App::kKad, {0.0, 0.0}, 0.0});
  AsPeerSet second;
  second.asn = net::Asn{7};
  const TargetDataset dataset{{first, second}, DatasetStats{}};
  ASSERT_NE(dataset.find(net::Asn{7}), nullptr);
  EXPECT_EQ(dataset.find(net::Asn{7}), &dataset.ases()[0]);
}

TEST(DatasetStats, EqualityAndDiffNameDivergedCounters) {
  const auto& f = shared_fixture();
  DatasetStats a = f.dataset.stats();
  DatasetStats b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(diff_stats(a, b), "");
  b.high_error += 3;
  b.final_peers += 1;
  EXPECT_NE(a, b);
  const auto diff = diff_stats(a, b);
  EXPECT_NE(diff.find("high_error"), std::string::npos) << diff;
  EXPECT_NE(diff.find("final_peers"), std::string::npos) << diff;
  EXPECT_EQ(diff.find("missing_geo"), std::string::npos) << diff;
}

TEST(DatasetStats, ToStringListsEveryCounter) {
  DatasetStats stats;
  stats.raw_samples = 12;
  stats.final_ases = 3;
  const auto text = to_string(stats);
  EXPECT_NE(text.find("raw_samples=12"), std::string::npos) << text;
  EXPECT_NE(text.find("final_ases=3"), std::string::npos) << text;
  EXPECT_NE(text.find("ases_above_p90_error=0"), std::string::npos) << text;
}

// ---- Builder edge cases (pinned pre/post parallel rewrite) ----

/// Answers every IP with one fixed record; pairs of these give every sample
/// an exact, controllable inter-database error.
class FixedGeoDatabase final : public geodb::GeoDatabase {
 public:
  FixedGeoDatabase(std::string name, geo::GeoPoint location)
      : name_(std::move(name)), location_(location) {}
  [[nodiscard]] std::optional<geodb::GeoRecord> lookup(net::Ipv4Address) const override {
    return geodb::GeoRecord{"Rome", "Lazio", "IT", location_, gazetteer::kInvalidCity};
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

 private:
  std::string name_;
  geo::GeoPoint location_;
};

/// A database with no city-level record for any IP.
class EmptyGeoDatabase final : public geodb::GeoDatabase {
 public:
  [[nodiscard]] std::optional<geodb::GeoRecord> lookup(net::Ipv4Address) const override {
    return std::nullopt;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "empty"; }
};

std::vector<p2p::PeerSample> samples_in(std::uint8_t first_octet, std::size_t count) {
  std::vector<p2p::PeerSample> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({net::Ipv4Address{first_octet, 0, 0, static_cast<std::uint8_t>(i)},
                   p2p::App::kKad});
  }
  return out;
}

bgp::RibSnapshot two_as_rib() {
  return bgp::RibSnapshot{{
      {net::Ipv4Prefix{net::Ipv4Address{10, 0, 0, 0}, 8}, {net::Asn{100}}},
      {net::Ipv4Prefix{net::Ipv4Address{20, 0, 0, 0}, 8}, {net::Asn{200}}},
  }};
}

TEST(DatasetBuilderEdge, EmptySampleSpan) {
  const geo::GeoPoint rome{41.9, 12.5};
  const FixedGeoDatabase primary{"a", rome};
  const FixedGeoDatabase secondary{"b", rome};
  const auto rib = two_as_rib();
  const bgp::IpToAsMapper mapper{rib};
  const DatasetBuilder builder{primary, secondary, mapper, {}};
  const auto dataset = builder.build({});
  EXPECT_TRUE(dataset.ases().empty());
  EXPECT_EQ(dataset.stats(), DatasetStats{}) << to_string(dataset.stats());
  EXPECT_EQ(dataset.find(net::Asn{100}), nullptr);
}

TEST(DatasetBuilderEdge, AllSamplesMissingGeo) {
  const geo::GeoPoint rome{41.9, 12.5};
  const FixedGeoDatabase primary{"a", rome};
  const EmptyGeoDatabase secondary;
  const auto rib = two_as_rib();
  const bgp::IpToAsMapper mapper{rib};
  const DatasetBuilder builder{primary, secondary, mapper, {}};
  const auto dataset = builder.build(samples_in(10, 50));
  EXPECT_TRUE(dataset.ases().empty());
  EXPECT_EQ(dataset.stats().raw_samples, 50u);
  EXPECT_EQ(dataset.stats().missing_geo, 50u);
  EXPECT_EQ(dataset.stats().final_peers, 0u);
}

TEST(DatasetBuilderEdge, AllSamplesUnmapped) {
  const geo::GeoPoint rome{41.9, 12.5};
  const FixedGeoDatabase primary{"a", rome};
  const FixedGeoDatabase secondary{"b", rome};
  const auto rib = two_as_rib();
  const bgp::IpToAsMapper mapper{rib};
  const DatasetBuilder builder{primary, secondary, mapper, {}};
  // 30.x.x.x is covered by neither RIB prefix.
  const auto dataset = builder.build(samples_in(30, 40));
  EXPECT_TRUE(dataset.ases().empty());
  EXPECT_EQ(dataset.stats().unmapped_as, 40u);
  EXPECT_EQ(dataset.stats().missing_geo, 0u);
}

TEST(DatasetBuilderEdge, AsExactlyAtMinPeersIsKept) {
  const geo::GeoPoint rome{41.9, 12.5};
  const FixedGeoDatabase primary{"a", rome};
  const FixedGeoDatabase secondary{"b", rome};
  const auto rib = two_as_rib();
  const bgp::IpToAsMapper mapper{rib};
  DatasetConfig config;
  config.min_peers_per_as = 5;
  const DatasetBuilder builder{primary, secondary, mapper, config};
  auto samples = samples_in(10, 5);  // AS100: exactly the minimum
  const auto below = samples_in(20, 4);  // AS200: one short
  samples.insert(samples.end(), below.begin(), below.end());
  const auto dataset = builder.build(samples);
  ASSERT_EQ(dataset.ases().size(), 1u);
  EXPECT_EQ(dataset.ases()[0].asn, net::Asn{100});
  EXPECT_EQ(dataset.ases()[0].peers.size(), 5u);
  EXPECT_EQ(dataset.stats().ases_below_min_peers, 1u);
  EXPECT_EQ(dataset.stats().peers_in_small_ases, 4u);
  EXPECT_EQ(dataset.stats().final_peers, 5u);
  EXPECT_EQ(dataset.stats().final_ases, 1u);
}

TEST(DatasetBuilderEdge, P90ErrorBoundaryEqualityIsKept) {
  // Both filters are strict '>': an AS whose p90 geo error equals the cap
  // exactly must survive, and one epsilon below the cap must drop it.
  const geo::GeoPoint rome{41.9, 12.5};
  const geo::GeoPoint offset = geo::destination(rome, 90.0, 50.0);
  const double error_km = geo::distance_km(rome, offset);
  const FixedGeoDatabase primary{"a", rome};
  const FixedGeoDatabase secondary{"b", offset};
  const auto rib = two_as_rib();
  const bgp::IpToAsMapper mapper{rib};

  DatasetConfig config;
  config.min_peers_per_as = 3;
  config.max_geo_error_km = error_km;  // per-IP filter passes on equality too
  config.max_p90_geo_error_km = error_km;
  const auto samples = samples_in(10, 8);
  const auto kept = DatasetBuilder{primary, secondary, mapper, config}.build(samples);
  ASSERT_EQ(kept.ases().size(), 1u);
  EXPECT_EQ(kept.stats().ases_above_p90_error, 0u);
  for (const auto& peer : kept.ases()[0].peers) {
    EXPECT_EQ(peer.geo_error_km, error_km);
  }

  config.max_p90_geo_error_km = std::nextafter(error_km, 0.0);
  const auto dropped = DatasetBuilder{primary, secondary, mapper, config}.build(samples);
  EXPECT_TRUE(dropped.ases().empty());
  EXPECT_EQ(dropped.stats().ases_above_p90_error, 1u);
  EXPECT_EQ(dropped.stats().final_peers, 0u);
}

TEST(DatasetBuilderEdge, EdgeCasesIdenticalWhenSharded) {
  // The edge paths (empty buckets, boundary equality) through the sharded
  // build at several thread counts.
  const geo::GeoPoint rome{41.9, 12.5};
  const FixedGeoDatabase primary{"a", rome};
  const FixedGeoDatabase secondary{"b", rome};
  const auto rib = two_as_rib();
  const bgp::IpToAsMapper mapper{rib};
  DatasetConfig config;
  config.min_peers_per_as = 5;
  const DatasetBuilder builder{primary, secondary, mapper, config};
  auto samples = samples_in(10, 5);
  const auto below = samples_in(20, 4);
  samples.insert(samples.end(), below.begin(), below.end());
  const auto serial = builder.build(samples, 1);
  for (const std::size_t threads : {2u, 4u, 0u}) {
    const auto parallel = builder.build(samples, threads);
    EXPECT_EQ(serial.stats(), parallel.stats())
        << diff_stats(serial.stats(), parallel.stats());
    ASSERT_EQ(parallel.ases().size(), serial.ases().size());
    for (std::size_t i = 0; i < serial.ases().size(); ++i) {
      EXPECT_EQ(serial.ases()[i].asn, parallel.ases()[i].asn);
      EXPECT_EQ(serial.ases()[i].peers.size(), parallel.ases()[i].peers.size());
    }
  }
}

// ---- Classification (§2, >95% rule) ----

TEST(Classifier, RecoversDesignedLevelMostly) {
  const auto& f = shared_fixture();
  const AsClassifier classifier{f.gaz};
  std::size_t agree = 0;
  std::size_t total = 0;
  for (const auto& as : f.dataset.ases()) {
    const auto result = classifier.classify(as);
    const auto designed = f.eco.at(as.asn).level;
    ++total;
    if (result.level == designed) ++agree;
  }
  ASSERT_GT(total, 0u);
  // Geo noise and >95% strictness blur some boundaries; the bulk must agree.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.5);
}

TEST(Classifier, CityLevelAsClassifiedAtMostState) {
  // A designed city-level AS must never be classified country or wider:
  // all its users sit in one metro (modulo geo error ≤ 80 km).
  const auto& f = shared_fixture();
  const AsClassifier classifier{f.gaz};
  for (const auto& as : f.dataset.ases()) {
    if (f.eco.at(as.asn).level != topology::AsLevel::kCity) continue;
    const auto result = classifier.classify(as);
    EXPECT_LE(static_cast<int>(result.level),
              static_cast<int>(topology::AsLevel::kCountry))
        << f.eco.at(as.asn).name;
  }
}

TEST(Classifier, DominantShareExceedsThresholdForNonGlobal) {
  const auto& f = shared_fixture();
  const AsClassifier classifier{f.gaz};
  for (const auto& as : f.dataset.ases()) {
    const auto result = classifier.classify(as);
    if (result.level != topology::AsLevel::kGlobal) {
      EXPECT_GT(result.dominant_share, 0.95);
      EXPECT_FALSE(result.dominant_region.empty());
    }
  }
}

TEST(Classifier, ThresholdValidation) {
  const auto& f = shared_fixture();
  EXPECT_THROW(AsClassifier(f.gaz, 0.4), std::invalid_argument);
  EXPECT_THROW(AsClassifier(f.gaz, 1.5), std::invalid_argument);
  EXPECT_NO_THROW(AsClassifier(f.gaz, 0.95));
}

TEST(Classifier, RejectsEmptyPeerSet) {
  const auto& f = shared_fixture();
  const AsClassifier classifier{f.gaz};
  AsPeerSet empty;
  EXPECT_THROW((void)classifier.classify(empty), std::invalid_argument);
}

TEST(Classifier, SyntheticSingleCityIsCityLevel) {
  const auto& f = shared_fixture();
  const AsClassifier classifier{f.gaz};
  AsPeerSet set;
  set.asn = net::Asn{64512};
  const auto rome = f.gaz.city(*f.gaz.find_by_name("Rome", "IT"));
  for (int i = 0; i < 100; ++i) {
    set.peers.push_back({net::Ipv4Address{static_cast<std::uint32_t>(i)}, p2p::App::kKad,
                         geo::destination(rome.location, i * 3.6, 5.0), 0.0});
  }
  const auto result = classifier.classify(set);
  EXPECT_EQ(result.level, topology::AsLevel::kCity);
  EXPECT_EQ(result.dominant_region, "Rome");
  EXPECT_EQ(result.continent, gazetteer::Continent::kEurope);
}

TEST(Classifier, SyntheticTwoCountriesIsContinentLevel) {
  const auto& f = shared_fixture();
  const AsClassifier classifier{f.gaz};
  AsPeerSet set;
  set.asn = net::Asn{64513};
  const auto rome = f.gaz.city(*f.gaz.find_by_name("Rome", "IT")).location;
  const auto paris = f.gaz.city(*f.gaz.find_by_name("Paris", "FR")).location;
  for (int i = 0; i < 50; ++i) {
    set.peers.push_back({net::Ipv4Address{static_cast<std::uint32_t>(i)}, p2p::App::kKad,
                         rome, 0.0});
    set.peers.push_back({net::Ipv4Address{static_cast<std::uint32_t>(1000 + i)},
                         p2p::App::kKad, paris, 0.0});
  }
  EXPECT_EQ(classifier.classify(set).level, topology::AsLevel::kContinent);
}

// ---- Footprint estimation (§3) ----

TEST(Footprint, EstimateProducesPeaksAndContour) {
  const auto& f = shared_fixture();
  const GeoFootprintEstimator estimator;
  const auto& as = *std::max_element(
      f.dataset.ases().begin(), f.dataset.ases().end(),
      [](const auto& a, const auto& b) { return a.peers.size() < b.peers.size(); });
  const auto footprint = estimator.estimate(as);
  EXPECT_EQ(footprint.sample_count, as.peers.size());
  EXPECT_DOUBLE_EQ(footprint.bandwidth_km, 40.0);
  EXPECT_FALSE(footprint.peaks.empty());
  EXPECT_FALSE(footprint.contour.partitions.empty());
  EXPECT_NEAR(footprint.grid.integral(), 1.0, 0.05);
}

TEST(Footprint, PeaksNearTruePopCities) {
  const auto& f = shared_fixture();
  const GeoFootprintEstimator estimator;
  const auto& as = f.dataset.ases()[0];
  const auto footprint = estimator.estimate(as);
  const auto& true_as = f.eco.at(as.asn);
  // The strongest peak must fall within 60 km of some true service PoP.
  ASSERT_FALSE(footprint.peaks.empty());
  double best = 1e18;
  for (const auto& pop : true_as.pops) {
    if (pop.transit_only) continue;
    best = std::min(best, geo::distance_km(footprint.peaks[0].location,
                                           f.gaz.city(pop.city).location));
  }
  EXPECT_LT(best, 60.0);
}

TEST(Footprint, BandwidthOverrideChangesResolution) {
  const auto& f = shared_fixture();
  const GeoFootprintEstimator estimator;
  const AsPeerSet* country_as = nullptr;
  for (const auto& as : f.dataset.ases()) {
    if (f.eco.at(as.asn).level == topology::AsLevel::kCountry &&
        f.eco.at(as.asn).service_pop_count() >= 4) {
      country_as = &as;
      break;
    }
  }
  ASSERT_NE(country_as, nullptr);
  const auto fine = estimator.estimate(*country_as, 10.0);
  const auto coarse = estimator.estimate(*country_as, 80.0);
  EXPECT_GE(fine.peaks.size(), coarse.peaks.size());
}

TEST(Footprint, AdaptiveBandwidthRespectsFloor) {
  const auto& f = shared_fixture();
  const GeoFootprintEstimator estimator;
  const auto& as = f.dataset.ases()[0];
  const double bw = estimator.adaptive_bandwidth_km(as, 40.0);
  EXPECT_GE(bw, 40.0);
  const auto errors = as.geo_errors();
  EXPECT_GE(bw, util::percentile(errors, 90.0));
}

// ---- PoP mapping (§4) ----

TEST(PopMapping, PopsAreSortedAndUniqueCities) {
  const auto& f = shared_fixture();
  const auto& as = f.dataset.ases()[0];
  const auto analysis = f.pipeline.analyze(as);
  std::set<gazetteer::CityId> seen;
  for (std::size_t i = 0; i < analysis.pops.pops.size(); ++i) {
    EXPECT_TRUE(seen.insert(analysis.pops.pops[i].city).second);
    if (i > 0) {
      EXPECT_GE(analysis.pops.pops[i - 1].score, analysis.pops.pops[i].score);
    }
  }
}

TEST(PopMapping, EqualScorePopsOrderedByCityId) {
  const auto& f = shared_fixture();
  const PopCityMapper mapper{f.gaz};
  const auto milan = f.gaz.find_by_name("Milan", "IT");
  const auto rome = f.gaz.find_by_name("Rome", "IT");
  ASSERT_TRUE(milan.has_value());
  ASSERT_TRUE(rome.has_value());
  // Two peaks with byte-identical scores mapping to two distinct cities.
  // Densities differ so only the score ties — the comparator must fall back
  // to CityId, not leave the order to the sort implementation.
  kde::Peak at_milan;
  at_milan.location = f.gaz.city(*milan).location;
  at_milan.density = 0.8;
  at_milan.score = 0.25;
  kde::Peak at_rome;
  at_rome.location = f.gaz.city(*rome).location;
  at_rome.density = 0.4;
  at_rome.score = 0.25;
  const auto map_peaks = [&](std::vector<kde::Peak> peaks) {
    AsFootprint footprint{kde::DensityGrid{geo::BoundingBox{40.0, 47.0, 7.0, 14.0}, 50.0},
                          kde::Footprint{}, std::move(peaks), 0, 30.0};
    return mapper.map(footprint);
  };
  const auto expected_first = std::min(*milan, *rome);
  const auto expected_second = std::max(*milan, *rome);
  for (const auto& pops :
       {map_peaks({at_milan, at_rome}), map_peaks({at_rome, at_milan})}) {
    ASSERT_EQ(pops.pops.size(), 2u);
    EXPECT_EQ(pops.pops[0].score, pops.pops[1].score);
    // Tie broken by CityId ascending, independent of peak arrival order.
    EXPECT_EQ(pops.pops[0].city, expected_first);
    EXPECT_EQ(pops.pops[1].city, expected_second);
  }
}

TEST(PopMapping, RecoversMajorityOfTruePops) {
  const auto& f = shared_fixture();
  std::size_t found = 0;
  std::size_t total = 0;
  for (const auto& as : f.dataset.ases()) {
    const auto pops = f.pipeline.pop_footprint(as, 40.0);
    const auto& true_as = f.eco.at(as.asn);
    for (const auto& pop : true_as.pops) {
      if (pop.transit_only || pop.customer_share < 0.05) continue;
      ++total;
      if (pops.has_city(pop.city)) ++found;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.7);
}

TEST(PopMapping, ScoresTrackCustomerShares) {
  const auto& f = shared_fixture();
  // For a country-level AS with well-separated PoPs, inferred scores should
  // correlate with the true customer shares.
  for (const auto& as : f.dataset.ases()) {
    const auto& true_as = f.eco.at(as.asn);
    if (true_as.service_pop_count() < 3) continue;
    const auto pops = f.pipeline.pop_footprint(as, 40.0);
    if (pops.pops.size() < 2) continue;
    // Find the true share of the top inferred city; it should be among the
    // larger shares.
    double top_inferred_share = 0.0;
    double max_share = 0.0;
    for (const auto& pop : true_as.pops) {
      max_share = std::max(max_share, pop.customer_share);
      if (pop.city == pops.pops[0].city) top_inferred_share = pop.customer_share;
    }
    if (max_share > 0.0 && top_inferred_share > 0.0) {
      EXPECT_GT(top_inferred_share, 0.3 * max_share) << true_as.name;
      return;  // one solid AS checked is enough
    }
  }
}

TEST(PopMapping, DescribeFormatsLikePaper) {
  const auto& f = shared_fixture();
  const PopCityMapper mapper{f.gaz};
  const GeoFootprintEstimator estimator;
  const auto& as = f.dataset.ases()[0];
  const auto pops = mapper.map(estimator.estimate(as));
  const std::string text = mapper.describe(pops);
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), ']');
  if (!pops.pops.empty()) {
    EXPECT_NE(text.find("(."), std::string::npos) << text;
  }
}

TEST(PopMapping, UnmappedPeaksCountedNotListed) {
  const auto& f = shared_fixture();
  const PopCityMapper mapper{f.gaz};
  // Construct a footprint whose peak is in the middle of the ocean.
  AsPeerSet set;
  set.asn = net::Asn{64514};
  for (int i = 0; i < 2000; ++i) {
    set.peers.push_back({net::Ipv4Address{static_cast<std::uint32_t>(i)}, p2p::App::kKad,
                         geo::destination({30.0, -45.0}, i % 360, (i % 40) * 1.0), 0.0});
  }
  const GeoFootprintEstimator estimator;
  const auto pops = mapper.map(estimator.estimate(set));
  EXPECT_TRUE(pops.pops.empty());
  EXPECT_GT(pops.unmapped_peaks, 0u);
}

// ---- Pipeline facade ----

TEST(Pipeline, AnalyzeBundlesAllOutputs) {
  const auto& f = shared_fixture();
  const auto& as = f.dataset.ases()[0];
  const auto analysis = f.pipeline.analyze(as);
  EXPECT_EQ(analysis.asn, as.asn);
  EXPECT_FALSE(analysis.footprint.peaks.empty());
  EXPECT_GT(analysis.classification.dominant_share, 0.0);
}

TEST(Pipeline, PopFootprintMatchesAnalyze) {
  const auto& f = shared_fixture();
  const auto& as = f.dataset.ases()[0];
  const auto analysis = f.pipeline.analyze(as, 40.0);
  const auto pops = f.pipeline.pop_footprint(as, 40.0);
  ASSERT_EQ(analysis.pops.pops.size(), pops.pops.size());
  for (std::size_t i = 0; i < pops.pops.size(); ++i) {
    EXPECT_EQ(analysis.pops.pops[i].city, pops.pops[i].city);
  }
}

// ---- Multi-bandwidth refinement (§5 future work) ----

TEST(MultiBandwidth, NeverLosesTopPop) {
  const auto& f = shared_fixture();
  const GeoFootprintEstimator estimator;
  const MultiBandwidthRefiner refiner{f.gaz, estimator};
  const auto& as = f.dataset.ases()[0];
  const auto coarse = f.pipeline.pop_footprint(as, 40.0);
  const auto refined = refiner.refine(as);
  ASSERT_FALSE(coarse.pops.empty());
  ASSERT_FALSE(refined.pops.pops.empty());
  // The refined list must still contain (or split near) the top coarse PoP.
  const auto top_city = f.gaz.city(coarse.pops[0].city).location;
  double best = 1e18;
  for (const auto& pop : refined.pops.pops) {
    best = std::min(best, geo::distance_km(top_city, f.gaz.city(pop.city).location));
  }
  EXPECT_LT(best, 45.0);
}

TEST(MultiBandwidth, ScoreMassConserved) {
  const auto& f = shared_fixture();
  const GeoFootprintEstimator estimator;
  const MultiBandwidthRefiner refiner{f.gaz, estimator};
  const auto& as = f.dataset.ases()[0];
  const auto coarse = f.pipeline.pop_footprint(as, 40.0);
  const auto refined = refiner.refine(as);
  double coarse_mass = 0.0;
  for (const auto& pop : coarse.pops.size() ? coarse.pops : refined.pops.pops) {
    coarse_mass += pop.score;
  }
  double refined_mass = 0.0;
  for (const auto& pop : refined.pops.pops) refined_mass += pop.score;
  EXPECT_NEAR(refined_mass, coarse_mass, 0.25 * coarse_mass + 1e-9);
}

TEST(MultiBandwidth, SplitsMergedNeighbours) {
  // Synthetic AS with two PoPs 60 km apart: one coarse (80 km) peak, split
  // by the fine pass.
  const auto& f = shared_fixture();
  AsPeerSet set;
  set.asn = net::Asn{64515};
  const auto milan = f.gaz.city(*f.gaz.find_by_name("Milan", "IT")).location;
  const auto novara = f.gaz.city(*f.gaz.find_by_name("Novara", "IT")).location;
  util::Rng rng{5};
  for (int i = 0; i < 1500; ++i) {
    const auto& center = i % 2 == 0 ? milan : novara;
    set.peers.push_back({net::Ipv4Address{static_cast<std::uint32_t>(i)}, p2p::App::kKad,
                         geo::destination(center, rng.uniform(0.0, 360.0),
                                          rng.uniform(0.0, 6.0)),
                         0.0});
  }
  const GeoFootprintEstimator estimator;
  MultiBandwidthConfig config;
  config.coarse_bandwidth_km = 80.0;
  config.fine_bandwidth_km = 12.0;
  const MultiBandwidthRefiner refiner{f.gaz, estimator, config};
  const auto coarse = PopCityMapper{f.gaz}.map(estimator.estimate(set, 80.0));
  const auto refined = refiner.refine(set);
  EXPECT_GE(refined.pops.pops.size(), coarse.pops.size());
  EXPECT_GE(refined.splits, 1u);
}

}  // namespace
}  // namespace eyeball::core
