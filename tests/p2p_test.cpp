#include <gtest/gtest.h>

#include <map>

#include "gazetteer/gazetteer.hpp"
#include "p2p/app.hpp"
#include "p2p/crawler.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"

namespace eyeball::p2p {
namespace {

struct Fixture {
  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::AsEcosystem eco = [this] {
    topology::EcosystemConfig config;
    config.seed = 31;
    return topology::generate_ecosystem(gaz, config.scaled(0.05));
  }();
};

const Fixture& fixture() {
  static const Fixture instance;
  return instance;
}

TEST(App, Names) {
  EXPECT_EQ(to_string(App::kKad), "Kad");
  EXPECT_EQ(to_string(App::kBitTorrent), "BitTorrent");
  EXPECT_EQ(to_string(App::kGnutella), "Gnutella");
}

TEST(PenetrationModel, RegionalSkewMatchesTable1) {
  const PenetrationModel model;
  using gazetteer::Continent;
  // NA: Gnutella dominates; EU and Asia: Kad dominates.
  EXPECT_GT(model.base_rate(App::kGnutella, Continent::kNorthAmerica),
            model.base_rate(App::kKad, Continent::kNorthAmerica));
  EXPECT_GT(model.base_rate(App::kKad, Continent::kEurope),
            model.base_rate(App::kGnutella, Continent::kEurope));
  EXPECT_GT(model.base_rate(App::kKad, Continent::kAsia),
            model.base_rate(App::kBitTorrent, Continent::kAsia));
}

TEST(PenetrationModel, CountryNoiseDeterministic) {
  const PenetrationModel model;
  const double a = model.rate(App::kKad, gazetteer::Continent::kEurope, "IT", 5);
  const double b = model.rate(App::kKad, gazetteer::Continent::kEurope, "IT", 5);
  const double c = model.rate(App::kKad, gazetteer::Continent::kEurope, "DE", 5);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(a, 0.0);
}

TEST(PenetrationModel, SetRatesOverrides) {
  PenetrationModel model;
  model.set_rates(gazetteer::Continent::kEurope, {0.5, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(model.base_rate(App::kKad, gazetteer::Continent::kEurope), 0.5);
  EXPECT_DOUBLE_EQ(model.base_rate(App::kBitTorrent, gazetteer::Continent::kEurope), 0.0);
}

TEST(Crawler, DeterministicForSameConfig) {
  const auto& f = fixture();
  CrawlerConfig config;
  config.seed = 9;
  config.coverage = 0.05;
  const Crawler crawler{f.eco, f.gaz, config};
  const auto a = crawler.crawl();
  const auto b = crawler.crawl();
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]);
  }
}

TEST(Crawler, SamplesAreUniquePerApp) {
  const auto& f = fixture();
  CrawlerConfig config;
  config.seed = 9;
  config.coverage = 0.1;
  const auto result = Crawler{f.eco, f.gaz, config}.crawl();
  for (std::size_t i = 1; i < result.samples.size(); ++i) {
    EXPECT_NE(result.samples[i - 1], result.samples[i]);
  }
}

TEST(Crawler, SamplesBelongToEyeballServicePrefixes) {
  const auto& f = fixture();
  const topology::GroundTruthLocator locator{f.eco, f.gaz};
  CrawlerConfig config;
  config.seed = 9;
  config.coverage = 0.02;
  const auto result = Crawler{f.eco, f.gaz, config}.crawl();
  ASSERT_FALSE(result.samples.empty());
  for (const auto& sample : result.samples) {
    const auto truth = locator.locate(sample.ip);
    ASSERT_TRUE(truth);
    EXPECT_EQ(f.eco.at(truth->asn).role, topology::AsRole::kEyeball);
    EXPECT_FALSE(truth->transit_only);
  }
}

TEST(Crawler, SampleCountScalesWithCoverage) {
  const auto& f = fixture();
  CrawlerConfig low;
  low.seed = 9;
  low.coverage = 0.02;
  CrawlerConfig high = low;
  high.coverage = 0.2;
  const auto few = Crawler{f.eco, f.gaz, low}.crawl();
  const auto many = Crawler{f.eco, f.gaz, high}.crawl();
  EXPECT_GT(many.samples.size(), few.samples.size() * 5);
}

TEST(Crawler, RegionalAppMixMatchesPenetration) {
  const auto& f = fixture();
  const topology::GroundTruthLocator locator{f.eco, f.gaz};
  CrawlerConfig config;
  config.seed = 9;
  config.coverage = 0.15;
  const auto result = Crawler{f.eco, f.gaz, config}.crawl();
  std::map<std::pair<gazetteer::Continent, App>, std::size_t> counts;
  for (const auto& sample : result.samples) {
    const auto truth = locator.locate(sample.ip);
    ASSERT_TRUE(truth);
    ++counts[{f.eco.at(truth->asn).continent, sample.app}];
  }
  using gazetteer::Continent;
  const auto count_of = [&](Continent continent, App app) {
    return counts[{continent, app}];
  };
  // The paper's Table 1 shape: Gnutella wins NA, Kad wins EU and Asia.
  EXPECT_GT(count_of(Continent::kNorthAmerica, App::kGnutella),
            count_of(Continent::kNorthAmerica, App::kKad));
  EXPECT_GT(count_of(Continent::kEurope, App::kKad),
            count_of(Continent::kEurope, App::kGnutella));
  EXPECT_GT(count_of(Continent::kAsia, App::kKad),
            count_of(Continent::kAsia, App::kGnutella));
}

TEST(Crawler, CrawlAsMatchesAsSubset) {
  const auto& f = fixture();
  CrawlerConfig config;
  config.seed = 9;
  config.coverage = 0.05;
  const Crawler crawler{f.eco, f.gaz, config};
  const topology::GroundTruthLocator locator{f.eco, f.gaz};

  const auto eyeballs = f.eco.eyeballs();
  ASSERT_FALSE(eyeballs.empty());
  const auto& as = f.eco.at(eyeballs[0]);
  const auto samples = crawler.crawl_as(as);
  for (const auto& sample : samples) {
    const auto truth = locator.locate(sample.ip);
    ASSERT_TRUE(truth);
    EXPECT_EQ(truth->asn, as.asn);
  }
}

TEST(Crawler, NonEyeballProducesNoSamples) {
  const auto& f = fixture();
  CrawlerConfig config;
  config.coverage = 1.0;
  const Crawler crawler{f.eco, f.gaz, config};
  for (const auto& as : f.eco.ases()) {
    if (as.role == topology::AsRole::kTransit || as.role == topology::AsRole::kTier1) {
      EXPECT_TRUE(crawler.crawl_as(as).empty()) << as.name;
    }
  }
}

TEST(Crawler, BlackoutBiasSuppressesPops) {
  const auto& f = fixture();
  CrawlerConfig clean;
  clean.seed = 9;
  clean.coverage = 0.1;
  CrawlerConfig biased = clean;
  biased.bias.blackout_prob = 1.0;  // every PoP dark
  const auto with = Crawler{f.eco, f.gaz, clean}.crawl();
  const auto without = Crawler{f.eco, f.gaz, biased}.crawl();
  EXPECT_GT(with.samples.size(), 0u);
  EXPECT_EQ(without.samples.size(), 0u);
}

TEST(Crawler, MildBiasReducesButKeepsSamples) {
  const auto& f = fixture();
  CrawlerConfig clean;
  clean.seed = 9;
  clean.coverage = 0.1;
  CrawlerConfig biased = clean;
  biased.bias.mild_bias_prob = 1.0;  // every PoP rate in [0.1, 0.6]
  const auto full = Crawler{f.eco, f.gaz, clean}.crawl();
  const auto reduced = Crawler{f.eco, f.gaz, biased}.crawl();
  EXPECT_GT(reduced.samples.size(), 0u);
  EXPECT_LT(reduced.samples.size(), full.samples.size() * 7 / 10);
}

TEST(CrawlResult, CountForSumsToTotal) {
  const auto& f = fixture();
  CrawlerConfig config;
  config.seed = 9;
  config.coverage = 0.05;
  const auto result = Crawler{f.eco, f.gaz, config}.crawl();
  std::size_t total = 0;
  for (const auto app : kAllApps) total += result.count_for(app);
  EXPECT_EQ(total, result.samples.size());
}

}  // namespace
}  // namespace eyeball::p2p
