#include <gtest/gtest.h>

#include <vector>

#include "gazetteer/gazetteer.hpp"
#include "geodb/lookup_memo.hpp"
#include "geodb/synthetic_db.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"
#include "util/stats.hpp"

namespace eyeball::geodb {
namespace {

struct Fixture {
  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::AsEcosystem eco = [this] {
    topology::EcosystemConfig config;
    config.seed = 13;
    return topology::generate_ecosystem(gaz, config.scaled(0.05));
  }();
  topology::GroundTruthLocator truth{eco, gaz};

  /// A batch of allocated IPs spread over eyeball prefixes.
  std::vector<net::Ipv4Address> sample_ips(std::size_t want) const {
    std::vector<net::Ipv4Address> out;
    for (const auto& as : eco.ases()) {
      if (as.role != topology::AsRole::kEyeball) continue;
      for (const auto& pop : as.pops) {
        for (const auto& prefix : pop.prefixes) {
          const auto step = std::max<std::uint64_t>(1, prefix.size() / 8);
          for (std::uint64_t off = 0; off < prefix.size(); off += step) {
            out.push_back(net::Ipv4Address{
                static_cast<std::uint32_t>(prefix.address().value() + off)});
            if (out.size() >= want) return out;
          }
        }
      }
    }
    return out;
  }
};

const Fixture& fixture() {
  static const Fixture instance;
  return instance;
}

TEST(ErrorModel, PerfectHasNoNoise) {
  const auto model = ErrorModel::perfect();
  EXPECT_DOUBLE_EQ(model.exact, 1.0);
  EXPECT_DOUBLE_EQ(model.missing, 0.0);
}

TEST(SyntheticGeoDatabase, RejectsBadMixture) {
  const auto& f = fixture();
  ErrorModel bad;
  bad.exact = 0.5;
  bad.wrong_zip = 0.1;
  bad.wrong_city = 0.1;
  bad.far = 0.1;  // sums to 0.8
  EXPECT_THROW(SyntheticGeoDatabase("x", f.truth, bad, 1), std::invalid_argument);
  ErrorModel bad_missing;
  bad_missing.missing = 1.5;
  EXPECT_THROW(SyntheticGeoDatabase("x", f.truth, bad_missing, 1), std::invalid_argument);
}

TEST(SyntheticGeoDatabase, PerfectModelReturnsGroundTruth) {
  const auto& f = fixture();
  const SyntheticGeoDatabase db{"oracle", f.truth, ErrorModel::perfect(), 5};
  for (const auto ip : f.sample_ips(500)) {
    const auto record = db.lookup(ip);
    const auto truth = f.truth.locate(ip);
    ASSERT_TRUE(record && truth);
    EXPECT_EQ(record->location, truth->location);
    EXPECT_EQ(record->city, f.gaz.city(truth->city).name);
    EXPECT_EQ(record->country_code, f.gaz.city(truth->city).country_code);
  }
}

TEST(SyntheticGeoDatabase, UnallocatedIpHasNoRecord) {
  const auto& f = fixture();
  const SyntheticGeoDatabase db{"db", f.truth, {}, 5};
  EXPECT_FALSE(db.lookup(net::Ipv4Address{223, 255, 255, 254}));
}

TEST(SyntheticGeoDatabase, LookupsAreDeterministic) {
  const auto& f = fixture();
  const SyntheticGeoDatabase db{"db", f.truth, {}, 5};
  for (const auto ip : f.sample_ips(200)) {
    const auto a = db.lookup(ip);
    const auto b = db.lookup(ip);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->location, b->location);
    }
  }
}

TEST(SyntheticGeoDatabase, MissingRateRoughlyMatchesConfig) {
  const auto& f = fixture();
  ErrorModel model;
  model.missing = 0.2;
  const SyntheticGeoDatabase db{"db", f.truth, model, 7};
  const auto ips = f.sample_ips(3000);
  std::size_t missing = 0;
  for (const auto ip : ips) {
    if (!db.lookup(ip)) ++missing;
  }
  EXPECT_NEAR(static_cast<double>(missing) / static_cast<double>(ips.size()), 0.2, 0.04);
}

TEST(SyntheticGeoDatabase, ErrorMixtureProducesExpectedDistances) {
  const auto& f = fixture();
  ErrorModel model;  // defaults: 78% exact
  model.missing = 0.0;
  const SyntheticGeoDatabase db{"db", f.truth, model, 11};
  const auto ips = f.sample_ips(4000);
  std::size_t exact = 0;
  std::size_t near = 0;   // same city
  std::size_t wrong = 0;  // > 60 km off
  for (const auto ip : ips) {
    const auto record = db.lookup(ip);
    const auto truth = f.truth.locate(ip);
    ASSERT_TRUE(record && truth);
    const double d = geo::distance_km(record->location, truth->location);
    if (d < 0.001) {
      ++exact;
    } else if (d < 60.0) {
      ++near;
    } else {
      ++wrong;
    }
  }
  const auto total = static_cast<double>(ips.size());
  EXPECT_NEAR(static_cast<double>(exact) / total, model.exact, 0.05);
  EXPECT_GT(static_cast<double>(near) / total, 0.05);          // wrong-zip mass
  EXPECT_NEAR(static_cast<double>(wrong) / total, 0.08, 0.05);  // wrong-city + far mass
}

TEST(SyntheticGeoDatabase, TwoDatabasesDisagreeIndependently) {
  const auto& f = fixture();
  ErrorModel model;
  model.missing = 0.0;
  const SyntheticGeoDatabase a{"maxmind-like", f.truth, model, 100};
  const SyntheticGeoDatabase b{"ip2location-like", f.truth, model, 200};
  const auto ips = f.sample_ips(2000);
  std::size_t agree = 0;
  for (const auto ip : ips) {
    const auto ra = a.lookup(ip);
    const auto rb = b.lookup(ip);
    ASSERT_TRUE(ra && rb);
    if (ra->location == rb->location) ++agree;
  }
  // Both exact => agree (~0.78^2 = 61%); independent errors rarely agree.
  const double agreement = static_cast<double>(agree) / static_cast<double>(ips.size());
  EXPECT_NEAR(agreement, model.exact * model.exact, 0.06);
}

TEST(GeoErrorKm, ZeroWhenBothExact) {
  const auto& f = fixture();
  const SyntheticGeoDatabase a{"a", f.truth, ErrorModel::perfect(), 1};
  const SyntheticGeoDatabase b{"b", f.truth, ErrorModel::perfect(), 2};
  for (const auto ip : f.sample_ips(100)) {
    const auto error = geo_error_km(a, b, ip);
    ASSERT_TRUE(error);
    EXPECT_DOUBLE_EQ(*error, 0.0);
  }
}

TEST(GeoErrorKm, NulloptWhenEitherMissing) {
  const auto& f = fixture();
  ErrorModel always_missing;
  always_missing.missing = 1.0;
  const SyntheticGeoDatabase a{"a", f.truth, ErrorModel::perfect(), 1};
  const SyntheticGeoDatabase b{"b", f.truth, always_missing, 2};
  const auto ips = f.sample_ips(10);
  ASSERT_FALSE(ips.empty());
  EXPECT_FALSE(geo_error_km(a, b, ips[0]));
  EXPECT_FALSE(geo_error_km(b, a, ips[0]));
}

TEST(GeoErrorKm, ErrorIsUsefulProxyForTrueError) {
  // The paper's premise: inter-database distance correlates with the
  // primary database's true error.  Check that filtering on the proxy
  // reduces the true error of what remains.
  const auto& f = fixture();
  ErrorModel model;
  model.missing = 0.0;
  const SyntheticGeoDatabase a{"a", f.truth, model, 100};
  const SyntheticGeoDatabase b{"b", f.truth, model, 200};
  util::RunningStats kept_error;
  util::RunningStats all_error;
  for (const auto ip : f.sample_ips(4000)) {
    const auto ra = a.lookup(ip);
    const auto truth = f.truth.locate(ip);
    ASSERT_TRUE(ra && truth);
    const double true_error = geo::distance_km(ra->location, truth->location);
    all_error.add(true_error);
    const auto proxy = geo_error_km(a, b, ip);
    ASSERT_TRUE(proxy);
    if (*proxy <= 80.0) kept_error.add(true_error);
  }
  EXPECT_LT(kept_error.mean(), all_error.mean());
}

TEST(SyntheticGeoDatabase, NameIsExposed) {
  const auto& f = fixture();
  const SyntheticGeoDatabase db{"GeoIP-City-like", f.truth, {}, 1};
  EXPECT_EQ(db.name(), "GeoIP-City-like");
}

TEST(LookupMemo, AnswersMatchDatabaseIncludingMisses) {
  const auto& f = fixture();
  const SyntheticGeoDatabase db{"memoized", f.truth, {}, 21};
  LookupMemo memo{db, 64};  // tiny, to force evictions
  auto ips = f.sample_ips(400);
  ips.push_back(net::Ipv4Address{203, 0, 113, 1});  // unallocated: no record
  // Each IP is queried twice back-to-back (a guaranteed hit even after
  // collisions evict older slots) while cycling 400 IPs through 64 slots
  // keeps evictions and overwrites in play.
  for (int round = 0; round < 2; ++round) {
    for (const auto ip : ips) {
      const auto direct = db.lookup(ip);
      for (int repeat = 0; repeat < 2; ++repeat) {
        const auto memoized = memo.lookup(ip);
        ASSERT_EQ(direct.has_value(), memoized.has_value()) << ip.to_string();
        if (direct) {
          EXPECT_EQ(direct->city, memoized->city);
          EXPECT_EQ(direct->location, memoized->location);
          EXPECT_EQ(direct->city_id, memoized->city_id);
        }
      }
    }
  }
  EXPECT_GT(memo.hits(), 0u);
  EXPECT_GT(memo.misses(), 0u);
}

TEST(LookupMemo, ZeroSlotsDisablesCaching) {
  const auto& f = fixture();
  const SyntheticGeoDatabase db{"uncached", f.truth, {}, 22};
  LookupMemo memo{db, 0};
  const auto ips = f.sample_ips(16);
  for (int round = 0; round < 2; ++round) {
    for (const auto ip : ips) {
      const auto direct = db.lookup(ip);
      const auto memoized = memo.lookup(ip);
      ASSERT_EQ(direct.has_value(), memoized.has_value());
      if (direct) {
        EXPECT_EQ(direct->location, memoized->location);
      }
    }
  }
  EXPECT_EQ(memo.hits(), 0u);
}

/// Delegates to a real database while counting how often the memo actually
/// reaches it — the direct way to observe hits, misses and evictions.
class CountingGeoDatabase final : public GeoDatabase {
 public:
  explicit CountingGeoDatabase(const GeoDatabase& inner) : inner_(inner) {}
  [[nodiscard]] std::optional<GeoRecord> lookup(net::Ipv4Address ip) const override {
    ++calls_;
    return inner_.lookup(ip);
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "counting"; }
  [[nodiscard]] std::size_t calls() const noexcept { return calls_; }

 private:
  const GeoDatabase& inner_;
  mutable std::size_t calls_ = 0;
};

TEST(LookupMemo, CapacityRoundsUpToPowerOfTwo) {
  const auto& f = fixture();
  const SyntheticGeoDatabase db{"sized", f.truth, {}, 23};
  // The slot index is `hash & (capacity - 1)`, so the table must be a power
  // of two (EYEBALL_DCHECK'd in the constructor); requests round UP.
  EXPECT_EQ((LookupMemo{db, 1}).capacity(), 1u);
  EXPECT_EQ((LookupMemo{db, 2}).capacity(), 2u);
  EXPECT_EQ((LookupMemo{db, 5}).capacity(), 8u);
  EXPECT_EQ((LookupMemo{db, 64}).capacity(), 64u);
  EXPECT_EQ((LookupMemo{db, 65}).capacity(), 128u);
  EXPECT_EQ((LookupMemo{db, 0}).capacity(), 0u);
}

TEST(LookupMemo, HitMissAndEvictionCountersAreExact) {
  const auto& f = fixture();
  const SyntheticGeoDatabase inner{"evicting", f.truth, {}, 24};
  const CountingGeoDatabase db{inner};
  LookupMemo memo{db, 1};  // one slot: any two distinct IPs collide
  const auto ips = f.sample_ips(2);
  ASSERT_GE(ips.size(), 2u);
  const auto a = ips[0];
  const auto b = ips[1];

  (void)memo.lookup(a);  // miss: cold slot
  (void)memo.lookup(a);  // hit
  (void)memo.lookup(b);  // miss: evicts a
  (void)memo.lookup(b);  // hit
  (void)memo.lookup(a);  // miss again: b's eviction forgot a
  EXPECT_EQ(memo.hits(), 2u);
  EXPECT_EQ(memo.misses(), 3u);
  EXPECT_EQ(db.calls(), 3u);  // the database only sees the misses
  EXPECT_DOUBLE_EQ(memo.hit_rate(), 2.0 / 5.0);
  // Eviction never corrupts answers: the re-fetched record is the direct one.
  const auto direct = inner.lookup(a);
  const auto memoized = memo.lookup(a);
  ASSERT_EQ(direct.has_value(), memoized.has_value());
  if (direct) {
    EXPECT_EQ(direct->location, memoized->location);
  }
}

TEST(LookupMemo, ResetForgetsRecordsAndCounters) {
  const auto& f = fixture();
  const SyntheticGeoDatabase inner{"reset", f.truth, {}, 25};
  const CountingGeoDatabase db{inner};
  LookupMemo memo{db, 64};
  const auto ips = f.sample_ips(8);
  for (const auto ip : ips) (void)memo.lookup(ip);
  for (const auto ip : ips) (void)memo.lookup(ip);
  EXPECT_GT(memo.hits(), 0u);
  const auto calls_before = db.calls();

  memo.reset();
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(memo.misses(), 0u);
  EXPECT_DOUBLE_EQ(memo.hit_rate(), 0.0);
  EXPECT_EQ(memo.capacity(), 64u);  // no reallocation, just forgotten slots

  // Every previously cached IP must reach the database again...
  for (const auto ip : ips) {
    const auto direct = inner.lookup(ip);
    const auto memoized = memo.lookup(ip);
    ASSERT_EQ(direct.has_value(), memoized.has_value());
    if (direct) {
      EXPECT_EQ(direct->location, memoized->location);
    }
  }
  EXPECT_EQ(db.calls(), calls_before + ips.size());
  EXPECT_EQ(memo.misses(), ips.size());
}

}  // namespace
}  // namespace eyeball::geodb
