// Tests for the extension modules: the table-backed geo database (real-data
// adapter), Gao-style relationship inference, density-grid exporters and
// the IXP peering analysis.
#include <gtest/gtest.h>

#include <map>

#include "bgp/relationship_inference.hpp"
#include "connectivity/ixp_analysis.hpp"
#include "connectivity/rai_scenario.hpp"
#include "geodb/table_db.hpp"
#include "kde/estimator.hpp"
#include "kde/export.hpp"
#include "pipeline_fixture.hpp"
#include "util/rng.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;

// ---- TableGeoDatabase ----

constexpr std::string_view kTableText =
    "# comment line\n"
    "10.0.0.0/8|41.9028|12.4964|Rome|Lazio|IT\n"
    "10.1.0.0/16|45.4642|9.1900|Milan|Lombardy|IT\n"
    "\n"
    "192.0.2.0/24|48.8566|2.3522|Paris|Ile-de-France|FR\n";

TEST(TableGeoDatabase, ParseAndLongestMatch) {
  const auto db = geodb::TableGeoDatabase::parse("test", kTableText);
  EXPECT_EQ(db.size(), 3u);
  const auto rome = db.lookup(net::Ipv4Address{10, 9, 9, 9});
  ASSERT_TRUE(rome);
  EXPECT_EQ(rome->city, "Rome");
  const auto milan = db.lookup(net::Ipv4Address{10, 1, 2, 3});
  ASSERT_TRUE(milan);
  EXPECT_EQ(milan->city, "Milan");  // more-specific /16 wins
  EXPECT_FALSE(db.lookup(net::Ipv4Address{11, 0, 0, 1}));
}

TEST(TableGeoDatabase, ParseRejectsMalformed) {
  EXPECT_THROW((void)geodb::TableGeoDatabase::parse("x", "10.0.0.0/8|41.9|12.5|Rome|Lazio\n"),
               std::invalid_argument);  // five fields
  EXPECT_THROW((void)geodb::TableGeoDatabase::parse("x", "10.0.0.0/8|no|12.5|Rome|Lazio|IT\n"),
               std::invalid_argument);  // bad latitude
  EXPECT_THROW((void)geodb::TableGeoDatabase::parse("x", "banana|41.9|12.5|Rome|Lazio|IT\n"),
               std::invalid_argument);  // bad prefix
  EXPECT_THROW((void)geodb::TableGeoDatabase::parse("x", "10.0.0.0/8|41.9|12.5|Rome|Lazio|ITA\n"),
               std::invalid_argument);  // bad country
  EXPECT_THROW((void)geodb::TableGeoDatabase::parse("x", "10.0.0.0/8|99.9|12.5|Rome|Lazio|IT\n"),
               std::invalid_argument);  // out-of-range coordinates
}

TEST(TableGeoDatabase, DumpParseRoundTrip) {
  const auto db = geodb::TableGeoDatabase::parse("test", kTableText);
  const auto reparsed = geodb::TableGeoDatabase::parse("copy", db.dump());
  EXPECT_EQ(reparsed.size(), db.size());
  const auto a = db.lookup(net::Ipv4Address{10, 1, 2, 3});
  const auto b = reparsed.lookup(net::Ipv4Address{10, 1, 2, 3});
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->city, b->city);
  EXPECT_NEAR(a->location.lat_deg, b->location.lat_deg, 1e-4);
}

TEST(TableGeoDatabase, GazetteerLinkEnablesClassification) {
  const auto& f = shared_fixture();
  const auto db = geodb::TableGeoDatabase::parse("test", kTableText, &f.gaz);
  const auto record = db.lookup(net::Ipv4Address{10, 1, 2, 3});
  ASSERT_TRUE(record);
  ASSERT_NE(record->city_id, gazetteer::kInvalidCity);
  EXPECT_EQ(f.gaz.city(record->city_id).name, "Milan");
}

TEST(TableGeoDatabase, ExportSyntheticDatabase) {
  const auto& f = shared_fixture();
  // Export the synthetic database over the prefixes of a real AS and reload.
  std::vector<net::Ipv4Prefix> prefixes;
  for (const auto& pop : f.eco.ases()[10].pops) {
    for (const auto& prefix : pop.prefixes) prefixes.push_back(prefix);
  }
  ASSERT_FALSE(prefixes.empty());
  const auto text = geodb::TableGeoDatabase::export_database(f.primary, prefixes);
  const auto db = geodb::TableGeoDatabase::parse("export", text, &f.gaz);
  EXPECT_GT(db.size(), 0u);
  // Answers agree with the source for the sampled addresses.
  std::size_t checked = 0;
  for (const auto& prefix : prefixes) {
    const auto original = f.primary.lookup(prefix.first());
    const auto reloaded = db.lookup(prefix.first());
    if (!original) continue;
    ASSERT_TRUE(reloaded);
    EXPECT_EQ(original->city, reloaded->city);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

// ---- Relationship inference ----

TEST(RelationshipInference, DegreesCountDistinctNeighbours) {
  const auto rib = bgp::RibSnapshot::parse(
      "10.0.0.0/8|1 2 3\n"
      "11.0.0.0/8|1 2 4\n"
      "12.0.0.0/8|1 2 3\n");
  const auto degrees = bgp::RelationshipInferencer::degrees(rib);
  EXPECT_EQ(degrees.at(2), 3u);  // 1, 3, 4
  EXPECT_EQ(degrees.at(1), 1u);
  EXPECT_EQ(degrees.at(3), 1u);
}

TEST(RelationshipInference, SimpleChainInferredCorrectly) {
  // 2 is the hub (top): 3 and 4 hang off it, 1 is the collector's side.
  const auto rib = bgp::RibSnapshot::parse(
      "10.0.0.0/8|1 2 3\n"
      "11.0.0.0/8|1 2 4\n"
      "12.0.0.0/8|1 2 5\n");
  const bgp::RelationshipInferencer inferencer;
  const auto edges = inferencer.infer(rib);
  std::map<std::pair<std::uint32_t, std::uint32_t>, bgp::InferredRelationship> by_pair;
  for (const auto& edge : edges) {
    by_pair[{net::value_of(edge.a), net::value_of(edge.b)}] = edge.relationship;
  }
  // Downhill edge on key (2, 3): the relationship must say 3 is the
  // customer, i.e. 2 (edge.a) is the provider.
  const auto key = std::make_pair(2u, 3u);
  ASSERT_TRUE(by_pair.count(key));
  const auto inferred = by_pair[key];
  EXPECT_TRUE(inferred == bgp::InferredRelationship::kProviderCustomer)
      << "2 should be the provider of 3";
}

TEST(RelationshipInference, AccuracyOnGeneratedEcosystem) {
  // Validate against ground truth: customer-provider edges that appear in
  // paths should be recovered with high accuracy.
  const auto& f = shared_fixture();
  const bgp::RelationshipInferencer inferencer;
  const auto edges = inferencer.infer(f.rib);
  ASSERT_FALSE(edges.empty());

  std::map<std::pair<std::uint32_t, std::uint32_t>, int> truth;  // +1: a customer of b
  for (const auto& rel : f.eco.relationships()) {
    if (rel.type == topology::RelationshipType::kCustomerProvider) {
      truth[{net::value_of(rel.customer), net::value_of(rel.provider)}] = 1;
      truth[{net::value_of(rel.provider), net::value_of(rel.customer)}] = -1;
    } else {
      truth[{net::value_of(rel.customer), net::value_of(rel.provider)}] = 0;
      truth[{net::value_of(rel.provider), net::value_of(rel.customer)}] = 0;
    }
  }

  // Two scores, as in evaluations of Gao's algorithm: (a) direction
  // accuracy on edges the inferencer calls customer-provider (the meat of
  // a CAIDA-style dataset), and (b) overall agreement.  Single-collector
  // first-provider paths make peer/transit confusion unavoidable — the
  // very incompleteness the paper cites about BGP-derived views.
  std::size_t c2p_correct = 0;
  std::size_t c2p_classified = 0;
  std::size_t correct = 0;
  std::size_t classified = 0;
  for (const auto& edge : edges) {
    const auto it = truth.find({net::value_of(edge.a), net::value_of(edge.b)});
    if (it == truth.end()) continue;
    ++classified;
    const int expected = it->second;
    const bool match =
        (expected == 1 && edge.relationship == bgp::InferredRelationship::kCustomerProvider) ||
        (expected == -1 && edge.relationship == bgp::InferredRelationship::kProviderCustomer) ||
        (expected == 0 && edge.relationship == bgp::InferredRelationship::kPeerPeer);
    if (match) ++correct;
    if (edge.relationship != bgp::InferredRelationship::kPeerPeer && expected != 0) {
      ++c2p_classified;
      if (match) ++c2p_correct;
    }
  }
  ASSERT_GT(classified, 20u);
  ASSERT_GT(c2p_classified, 10u);
  EXPECT_GT(static_cast<double>(c2p_correct) / static_cast<double>(c2p_classified), 0.9);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(classified), 0.6);
}

TEST(RelationshipInference, ConfidenceBounded) {
  const auto& f = shared_fixture();
  const bgp::RelationshipInferencer inferencer;
  for (const auto& edge : inferencer.infer(f.rib)) {
    EXPECT_GE(edge.confidence, 0.0);
    EXPECT_LE(edge.confidence, 1.0);
  }
}

// ---- Exporters ----

TEST(Export, CsvContainsCellsAboveThreshold) {
  util::Rng rng{1};
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back(geo::destination({41.9, 12.5}, rng.uniform(0.0, 360.0),
                                      rng.uniform(0.0, 30.0)));
  }
  const kde::KernelDensityEstimator estimator{kde::KdeConfig{}};
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto csv = kde::to_csv(grid, 0.0);
  EXPECT_NE(csv.find("lat,lon,density"), std::string::npos);
  // Threshold filters rows.
  const auto filtered = kde::to_csv(grid, grid.max_cell()->value * 0.5);
  EXPECT_LT(filtered.size(), csv.size());
}

TEST(Export, PgmHeaderAndDimensions) {
  util::Rng rng{2};
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(geo::destination({41.9, 12.5}, rng.uniform(0.0, 360.0),
                                      rng.uniform(0.0, 30.0)));
  }
  const kde::KernelDensityEstimator estimator{kde::KdeConfig{}};
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto pgm = kde::to_pgm(grid);
  const std::string expected_header =
      "P2\n" + std::to_string(grid.cols()) + " " + std::to_string(grid.rows());
  EXPECT_EQ(pgm.substr(0, expected_header.size()), expected_header);
  EXPECT_NE(pgm.find("255"), std::string::npos);
}

TEST(Export, GeojsonBoundary) {
  util::Rng rng{3};
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back(geo::destination({41.9, 12.5}, rng.uniform(0.0, 360.0),
                                      rng.uniform(0.0, 30.0)));
  }
  const kde::KernelDensityEstimator estimator{kde::KdeConfig{}};
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto footprint = kde::extract_footprint_relative(grid, 0.1);
  const auto geojson = kde::boundary_to_geojson(footprint);
  EXPECT_NE(geojson.find("FeatureCollection"), std::string::npos);
  EXPECT_NE(geojson.find("LineString"), std::string::npos);
  EXPECT_EQ(geojson.back(), '}');
}

// ---- IXP peering analysis ----

TEST(IxpAnalysis, RaiScenarioCounts) {
  const auto gaz = gazetteer::Gazetteer::builtin();
  const auto scenario = connectivity::build_rai_scenario(gaz);
  const auto report = connectivity::analyze_peering(scenario.ecosystem, gaz);
  ASSERT_EQ(report.ixps.size(), 2u);
  // MIX has 6 members and carries RAI's three peerings plus one more.
  EXPECT_EQ(report.ixps[0].name, "MIX");
  EXPECT_EQ(report.ixps[0].members, 6u);
  EXPECT_EQ(report.ixps[0].peerings, 4u);
}

TEST(IxpAnalysis, GeneratedWorldShowsEuropeanRemotePeering) {
  const auto& f = shared_fixture();
  const auto report = connectivity::analyze_peering(f.eco, f.gaz);
  ASSERT_EQ(report.continents.size(), 3u);
  const auto& europe = report.continents[1];
  EXPECT_EQ(europe.continent, gazetteer::Continent::kEurope);
  EXPECT_GT(europe.eyeballs, 0u);
  EXPECT_GT(europe.ixps, 0u);
  // Multi-homing beyond 2 providers exists everywhere (paper's point).
  for (const auto& profile : report.continents) {
    EXPECT_GT(profile.avg_providers_per_eyeball, 1.0);
  }
  // Remote membership share is highest in Europe.
  const auto remote_share = [](const connectivity::ContinentPeeringProfile& p) {
    const auto total = p.local_memberships + p.remote_memberships;
    return total == 0 ? 0.0
                      : static_cast<double>(p.remote_memberships) /
                            static_cast<double>(total);
  };
  EXPECT_GE(remote_share(europe), remote_share(report.continents[0]));
}

TEST(IxpAnalysis, MembershipTotalsConsistent) {
  const auto& f = shared_fixture();
  const auto report = connectivity::analyze_peering(f.eco, f.gaz);
  std::size_t ixp_eyeball_members = 0;
  for (const auto& summary : report.ixps) ixp_eyeball_members += summary.eyeball_members;
  std::size_t continent_memberships = 0;
  for (const auto& profile : report.continents) {
    continent_memberships += profile.local_memberships + profile.remote_memberships;
  }
  EXPECT_EQ(ixp_eyeball_members, continent_memberships);
}

}  // namespace
}  // namespace eyeball
