#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace eyeball::net {
namespace {

TEST(Ipv4Address, OctetConstruction) {
  const Ipv4Address ip{192, 168, 1, 42};
  EXPECT_EQ(ip.value(), 0xc0a8012aU);
  EXPECT_EQ(ip.octet(0), 192);
  EXPECT_EQ(ip.octet(1), 168);
  EXPECT_EQ(ip.octet(2), 1);
  EXPECT_EQ(ip.octet(3), 42);
}

TEST(Ipv4Address, BitAccess) {
  const Ipv4Address ip{128, 0, 0, 1};
  EXPECT_TRUE(ip.bit(0));
  EXPECT_FALSE(ip.bit(1));
  EXPECT_TRUE(ip.bit(31));
}

TEST(Ipv4Address, ParseValid) {
  const auto ip = Ipv4Address::parse("10.20.30.40");
  ASSERT_TRUE(ip);
  EXPECT_EQ(*ip, Ipv4Address(10, 20, 30, 40));
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xffffffffU);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse("01.2.3.4"));
  EXPECT_FALSE(Ipv4Address::parse("-1.2.3.4"));
}

TEST(Ipv4Address, ToStringRoundTrip) {
  const Ipv4Address ip{203, 0, 113, 7};
  EXPECT_EQ(ip.to_string(), "203.0.113.7");
  EXPECT_EQ(*Ipv4Address::parse(ip.to_string()), ip);
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(1, 0, 0, 0), Ipv4Address(2, 0, 0, 0));
  EXPECT_LT(Ipv4Address(1, 0, 0, 1), Ipv4Address(1, 0, 1, 0));
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix p{Ipv4Address{192, 168, 1, 99}, 24};
  EXPECT_EQ(p.address(), Ipv4Address(192, 168, 1, 0));
  EXPECT_EQ(p.length(), 24);
}

TEST(Ipv4Prefix, SizeFirstLast) {
  const Ipv4Prefix p{Ipv4Address{10, 0, 0, 0}, 22};
  EXPECT_EQ(p.size(), 1024u);
  EXPECT_EQ(p.first(), Ipv4Address(10, 0, 0, 0));
  EXPECT_EQ(p.last(), Ipv4Address(10, 0, 3, 255));
}

TEST(Ipv4Prefix, ContainsAddress) {
  const Ipv4Prefix p{Ipv4Address{172, 16, 0, 0}, 12};
  EXPECT_TRUE(p.contains(Ipv4Address(172, 16, 0, 1)));
  EXPECT_TRUE(p.contains(Ipv4Address(172, 31, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4Address(172, 32, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Address(10, 0, 0, 1)));
}

TEST(Ipv4Prefix, ContainsPrefix) {
  const Ipv4Prefix big{Ipv4Address{10, 0, 0, 0}, 8};
  const Ipv4Prefix small{Ipv4Address{10, 1, 0, 0}, 16};
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(Ipv4Prefix, ZeroLengthCoversEverything) {
  const Ipv4Prefix all{Ipv4Address{1, 2, 3, 4}, 0};
  EXPECT_EQ(all.address().value(), 0u);
  EXPECT_EQ(all.size(), 1ULL << 32);
  EXPECT_TRUE(all.contains(Ipv4Address(255, 255, 255, 255)));
}

TEST(Ipv4Prefix, Halves) {
  const Ipv4Prefix p{Ipv4Address{10, 0, 0, 0}, 8};
  EXPECT_EQ(p.lower_half(), Ipv4Prefix(Ipv4Address(10, 0, 0, 0), 9));
  EXPECT_EQ(p.upper_half(), Ipv4Prefix(Ipv4Address(10, 128, 0, 0), 9));
}

TEST(Ipv4Prefix, ParseValid) {
  const auto p = Ipv4Prefix::parse("192.0.2.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 24);
  EXPECT_EQ(p->address(), Ipv4Address(192, 0, 2, 0));
  EXPECT_EQ(Ipv4Prefix::parse("0.0.0.0/0")->size(), 1ULL << 32);
}

TEST(Ipv4Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::parse("192.0.2.0"));
  EXPECT_FALSE(Ipv4Prefix::parse("192.0.2.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("192.0.2.0/"));
  EXPECT_FALSE(Ipv4Prefix::parse("/24"));
  EXPECT_FALSE(Ipv4Prefix::parse("192.0.2.0/24x"));
}

TEST(Ipv4Prefix, ToStringRoundTrip) {
  const Ipv4Prefix p{Ipv4Address{198, 51, 100, 0}, 25};
  EXPECT_EQ(p.to_string(), "198.51.100.0/25");
  EXPECT_EQ(*Ipv4Prefix::parse(p.to_string()), p);
}

TEST(Asn, Formatting) {
  EXPECT_EQ(to_string(Asn{8234}), "AS8234");
  EXPECT_EQ(value_of(Asn{65535}), 65535u);
}

TEST(PrefixTrie, EmptyTrieMatchesNothing) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.longest_match(Ipv4Address{1, 2, 3, 4}));
}

TEST(PrefixTrie, ExactAndLongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 3);

  EXPECT_EQ(trie.longest_match(Ipv4Address(10, 1, 2, 3)), 3);
  EXPECT_EQ(trie.longest_match(Ipv4Address(10, 1, 3, 3)), 2);
  EXPECT_EQ(trie.longest_match(Ipv4Address(10, 2, 0, 1)), 1);
  EXPECT_FALSE(trie.longest_match(Ipv4Address(11, 0, 0, 1)));
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix{Ipv4Address{0}, 0}, 99);
  EXPECT_EQ(trie.longest_match(Ipv4Address(8, 8, 8, 8)), 99);
  EXPECT_EQ(trie.longest_match(Ipv4Address(255, 255, 255, 255)), 99);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 7));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.longest_match(Ipv4Address(10, 0, 0, 1)), 7);
}

TEST(PrefixTrie, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("192.0.2.1/32"), 5);
  EXPECT_EQ(trie.longest_match(Ipv4Address(192, 0, 2, 1)), 5);
  EXPECT_FALSE(trie.longest_match(Ipv4Address(192, 0, 2, 2)));
}

TEST(PrefixTrie, ExactMatchIgnoresCoveringPrefixes) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_FALSE(trie.exact_match(*Ipv4Prefix::parse("10.1.0.0/16")));
  EXPECT_EQ(trie.exact_match(*Ipv4Prefix::parse("10.0.0.0/8")), 1);
}

TEST(PrefixTrie, Erase) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  EXPECT_TRUE(trie.erase(*Ipv4Prefix::parse("10.1.0.0/16")));
  EXPECT_FALSE(trie.erase(*Ipv4Prefix::parse("10.1.0.0/16")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.longest_match(Ipv4Address(10, 1, 2, 3)), 1);
}

TEST(PrefixTrie, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("20.0.0.0/8"), 2);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("10.128.0.0/9"), 3);
  std::vector<std::pair<std::string, int>> seen;
  trie.for_each([&](const Ipv4Prefix& p, int v) { seen.emplace_back(p.to_string(), v); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].first, "10.0.0.0/8");
  EXPECT_EQ(seen[1].first, "10.128.0.0/9");
  EXPECT_EQ(seen[2].first, "20.0.0.0/8");
}

TEST(PrefixTrie, RandomizedAgainstLinearScan) {
  // Property test: trie LPM == brute-force longest matching prefix.
  util::Rng rng{99};
  std::vector<std::pair<Ipv4Prefix, int>> table;
  PrefixTrie<int> trie;
  for (int i = 0; i < 300; ++i) {
    const auto length = static_cast<int>(8 + rng.uniform_index(17));  // 8..24
    const Ipv4Prefix prefix{Ipv4Address{static_cast<std::uint32_t>(rng())}, length};
    if (trie.insert(prefix, i)) {
      table.emplace_back(prefix, i);
    } else {
      for (auto& [p, v] : table) {
        if (p == prefix) v = i;
      }
    }
  }
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Address ip{static_cast<std::uint32_t>(rng())};
    std::optional<int> expected;
    int best_length = -1;
    for (const auto& [p, v] : table) {
      if (p.contains(ip) && p.length() > best_length) {
        best_length = p.length();
        expected = v;
      }
    }
    EXPECT_EQ(trie.longest_match(ip), expected) << ip.to_string();
  }
}

TEST(PrefixTrie, LongestMatchEntryReportsPrefixLength) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  const auto entry = trie.longest_match_entry(Ipv4Address(10, 1, 200, 9));
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->first.length(), 16);
  EXPECT_EQ(entry->second, 2);
}

// Regression: the reported prefix is rebuilt from the lookup address, so the
// host bits beyond the match depth must be zeroed — the entry has to compare
// equal to the prefix that was inserted, not to the host re-labelled with a
// mask length.
TEST(PrefixTrie, LongestMatchEntryReturnsCanonicalInsertedPrefix) {
  PrefixTrie<int> trie;
  const auto inserted = *Ipv4Prefix::parse("10.1.0.0/16");
  trie.insert(inserted, 7);
  const auto entry = trie.longest_match_entry(Ipv4Address(10, 1, 200, 9));
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->first, inserted);
  EXPECT_EQ(entry->first.address(), inserted.address());
  EXPECT_EQ(entry->first.to_string(), "10.1.0.0/16");
}

TEST(PrefixTrie, LongestMatchEntryCanonicalOnRandomTables) {
  util::Rng rng{4242};
  PrefixTrie<int> trie;
  std::vector<Ipv4Prefix> prefixes;
  for (int i = 0; i < 200; ++i) {
    const auto length = static_cast<int>(8 + rng.uniform_index(17));  // 8..24
    const Ipv4Prefix prefix{Ipv4Address{static_cast<std::uint32_t>(rng())}, length};
    trie.insert(prefix, i);
    prefixes.push_back(prefix);
  }
  for (int i = 0; i < 1000; ++i) {
    const Ipv4Address ip{static_cast<std::uint32_t>(rng())};
    const auto entry = trie.longest_match_entry(ip);
    if (!entry) continue;
    // The reported prefix must contain the lookup address, carry no host
    // bits, and be one of the inserted prefixes.
    EXPECT_TRUE(entry->first.contains(ip)) << ip.to_string();
    EXPECT_EQ(entry->first.address().value() & ~entry->first.netmask(), 0u)
        << entry->first.to_string();
    EXPECT_NE(std::find(prefixes.begin(), prefixes.end(), entry->first),
              prefixes.end())
        << entry->first.to_string();
  }
}

}  // namespace
}  // namespace eyeball::net
