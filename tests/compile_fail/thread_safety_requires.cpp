// Compile-fail contract probe for the thread-safety annotation layer
// (src/util/annotations.hpp + src/util/mutex.hpp).  Driven by the
// EYEBALL_THREAD_SAFETY block in the top-level CMakeLists, which builds
// this file twice under Clang with -Werror=thread-safety-analysis:
//
//   * without EYEBALL_COMPILE_FAIL_UNLOCKED: the guarded helper is called
//     under a MutexLock — MUST compile (proves scoped acquisition is seen);
//   * with    EYEBALL_COMPILE_FAIL_UNLOCKED: the same helper is called
//     bare — MUST NOT compile (proves EYEBALL_REQUIRES reaches the
//     compiler as a capability attribute instead of expanding to nothing).
//
// The phantom Serial role gets the same two-sided treatment, since half
// the tree's contracts (builder, memos, service writer path) ride on it.
//
// Not part of any normal build target; a plain GCC compile of this file is
// also valid (the macros are no-ops there), which CMake never exercises.

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace {

struct GuardedCounter {
  eyeball::util::Mutex mutex;
  int value EYEBALL_GUARDED_BY(mutex) = 0;

  void bump_locked() EYEBALL_REQUIRES(mutex) { ++value; }
};

struct RoleOwnedCounter {
  eyeball::util::Serial owner;
  int value EYEBALL_GUARDED_BY(owner) = 0;

  void bump_owned() EYEBALL_REQUIRES(owner) { ++value; }
};

}  // namespace

int main() {
  GuardedCounter guarded;
  RoleOwnedCounter owned;
  int total = 0;
#if defined(EYEBALL_COMPILE_FAIL_UNLOCKED)
  // Neither capability is held here: under -Werror=thread-safety-analysis
  // both calls must be rejected.
  guarded.bump_locked();
  owned.bump_owned();
#else
  {
    const eyeball::util::MutexLock lock{guarded.mutex};
    guarded.bump_locked();
    total += guarded.value;  // guarded read, also under the lock
  }
  {
    const eyeball::util::SerialSection section{owned.owner};
    owned.bump_owned();
    total += owned.value;
  }
#endif
  return total == 2 ? 0 : 1;
}
