// Concurrency and correctness harness for the serving layer
// (serve/service.hpp): epoch publication semantics, reader pinning across
// publishes, the incremental-republish-equals-from-scratch differential,
// the restore-then-serve round trip, and a readers-vs-writer storm that
// pins "every answer is attributable to exactly one published epoch".
// Runs under the TSan gate (tools/check.sh matches 'Serving|serving').
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/streaming_dataset.hpp"
#include "p2p/churn.hpp"
#include "pipeline_fixture.hpp"
#include "serve/service.hpp"
#include "util/clock.hpp"
#include "util/crc32c.hpp"
#include "util/file.hpp"
#include "util/status.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;

/// Longitudinal stream plus a pipeline configured for the streaming regime
/// (min_peers_per_as lowered so single windows sit below the threshold ASes
/// later cross), and the one-shot reference the served dataset must equal.
struct ServeWorld {
  const testing::PipelineFixture& f = shared_fixture();
  core::PipelineConfig config = [] {
    core::PipelineConfig pipeline_config = shared_fixture().pipeline.config();
    pipeline_config.dataset.min_peers_per_as = 300;
    pipeline_config.threads = 2;
    return pipeline_config;
  }();
  core::EyeballPipeline pipeline{f.gaz, f.primary, f.secondary, f.mapper, config};
  p2p::LongitudinalResult churn = [this] {
    p2p::CrawlerConfig crawl_config;
    crawl_config.seed = 77;
    crawl_config.coverage = 0.05;
    p2p::ChurnConfig churn_config;
    churn_config.seed = 2009;
    churn_config.windows = 5;
    churn_config.lease_survival = 0.6;
    return p2p::longitudinal_crawl(f.eco, f.gaz, crawl_config, churn_config);
  }();
  std::vector<p2p::PeerSample> concatenated = [this] {
    std::vector<p2p::PeerSample> out;
    for (const auto& window : churn.windows) {
      out.insert(out.end(), window.begin(), window.end());
    }
    return out;
  }();
  core::TargetDataset reference =
      pipeline.build_dataset(core::dedup_first_observation(concatenated), 1);
};

const ServeWorld& serve_world() {
  static const ServeWorld instance;
  return instance;
}

/// The serving config every test uses: two writer-path threads, durability
/// off unless a test opts in.
[[nodiscard]] serve::ServiceConfig two_threads() {
  serve::ServiceConfig config;
  config.threads = 2;
  return config;
}

bool same_analysis(const core::AsAnalysis& a, const core::AsAnalysis& b) {
  if (a.asn != b.asn) return false;
  if (a.classification.level != b.classification.level ||
      a.classification.dominant_region != b.classification.dominant_region ||
      a.classification.dominant_share != b.classification.dominant_share) {
    return false;
  }
  if (a.footprint.grid.values() != b.footprint.grid.values()) return false;
  if (a.pops.unmapped_peaks != b.pops.unmapped_peaks) return false;
  if (a.pops.pops.size() != b.pops.pops.size()) return false;
  for (std::size_t i = 0; i < a.pops.pops.size(); ++i) {
    const auto& pa = a.pops.pops[i];
    const auto& pb = b.pops.pops[i];
    if (pa.city != pb.city || pa.score != pb.score ||
        pa.peak_density != pb.peak_density || pa.peak_location != pb.peak_location) {
      return false;
    }
  }
  return true;
}

void expect_same_snapshot(const serve::ServingSnapshot& a,
                          const serve::ServingSnapshot& b, const char* context) {
  EXPECT_EQ(a.dataset().stats(), b.dataset().stats())
      << context << ": " << core::diff_stats(a.dataset().stats(), b.dataset().stats());
  ASSERT_EQ(a.dataset().ases().size(), b.dataset().ases().size()) << context;
  ASSERT_EQ(a.analyses().size(), b.analyses().size()) << context;
  for (std::size_t i = 0; i < a.analyses().size(); ++i) {
    EXPECT_EQ(a.dataset().ases()[i].asn, b.dataset().ases()[i].asn)
        << context << " as index " << i;
    EXPECT_TRUE(same_analysis(a.analyses()[i], b.analyses()[i]))
        << context << " as index " << i;
  }
}

// ---- Epoch publication semantics ----

TEST(Serving, UnpublishedServiceAnswersEmpty) {
  const auto& w = serve_world();
  const serve::EyeballService service{w.pipeline};
  EXPECT_EQ(service.snapshot(), nullptr);
  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_FALSE(service.query(w.reference.ases()[0].asn));
  EXPECT_FALSE(service.stats().has_value());
  const auto batch = service.query_batch(std::vector<net::Asn>{net::Asn{1}});
  EXPECT_EQ(batch.snapshot, nullptr);
  ASSERT_EQ(batch.analyses.size(), 1u);
  EXPECT_EQ(batch.analyses[0], nullptr);
}

TEST(Serving, PublishAdvancesEpochAndAnswersPointQueries) {
  const auto& w = serve_world();
  serve::EyeballService service{w.pipeline, two_threads()};
  for (const auto& window : w.churn.windows) service.ingest(window);
  const auto snap = service.publish();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.snapshot(), snap);

  // The served dataset is the one-shot reference.
  EXPECT_EQ(snap->dataset().stats(), w.reference.stats())
      << core::diff_stats(w.reference.stats(), snap->dataset().stats());
  ASSERT_EQ(snap->dataset().ases().size(), w.reference.ases().size());

  // Every served ASN answers, pinned to this epoch, with the right analysis.
  for (const auto& as : snap->dataset().ases()) {
    const auto ref = service.query(as.asn);
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref.epoch(), 1u);
    EXPECT_EQ(ref.analysis->asn, as.asn);
  }
  // An unserved ASN answers "not served", still attributable to the epoch.
  const auto miss = service.query(net::Asn{0xFFFFFFFFu});
  EXPECT_FALSE(miss);
  EXPECT_EQ(miss.epoch(), 1u);

  const auto stats = service.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->epoch, 1u);
  EXPECT_EQ(stats->stats, snap->dataset().stats());
}

TEST(Serving, BatchAnswersComeFromOneEpoch) {
  const auto& w = serve_world();
  serve::EyeballService service{w.pipeline, two_threads()};
  for (const auto& window : w.churn.windows) service.ingest(window);
  (void)service.publish();
  std::vector<net::Asn> asns;
  for (const auto& as : w.reference.ases()) asns.push_back(as.asn);
  asns.push_back(net::Asn{0xFFFFFFFFu});  // one guaranteed miss
  const auto batch = service.query_batch(asns);
  ASSERT_NE(batch.snapshot, nullptr);
  EXPECT_EQ(batch.epoch(), 1u);
  ASSERT_EQ(batch.analyses.size(), asns.size());
  for (std::size_t i = 0; i + 1 < asns.size(); ++i) {
    ASSERT_NE(batch.analyses[i], nullptr) << "asn index " << i;
    EXPECT_EQ(batch.analyses[i]->asn, asns[i]);
  }
  EXPECT_EQ(batch.analyses.back(), nullptr);
}

// ---- Reader pinning: a held snapshot is immutable across publishes ----

TEST(Serving, ReaderHeldEpochUnchangedByLaterPublishes) {
  const auto& w = serve_world();
  serve::EyeballService service{w.pipeline, two_threads()};
  service.ingest(w.churn.windows[0]);
  const auto pinned = service.publish();
  ASSERT_NE(pinned, nullptr);
  // Deep-copy the observable state of epoch 1.
  const auto stats_before = pinned->dataset().stats();
  const std::size_t ases_before = pinned->dataset().ases().size();
  std::vector<core::AsAnalysis> analyses_before{pinned->analyses().begin(),
                                                pinned->analyses().end()};

  // The writer moves on: more windows, another epoch.
  for (std::size_t i = 1; i < w.churn.windows.size(); ++i) {
    service.ingest(w.churn.windows[i]);
  }
  const auto next = service.publish();
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->epoch(), 2u);
  EXPECT_EQ(service.epoch(), 2u);

  // The pinned epoch is bit-for-bit what it was at publish time.
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->dataset().stats(), stats_before);
  ASSERT_EQ(pinned->dataset().ases().size(), ases_before);
  ASSERT_EQ(pinned->analyses().size(), analyses_before.size());
  for (std::size_t i = 0; i < analyses_before.size(); ++i) {
    EXPECT_TRUE(same_analysis(pinned->analyses()[i], analyses_before[i]))
        << "as index " << i;
  }
  // And it is genuinely a different epoch from the current one.
  EXPECT_NE(service.snapshot(), pinned);
}

// ---- Differential: incremental republish == from-scratch analyze_all ----

TEST(Serving, IncrementalRepublishEqualsFromScratchAnalysis) {
  const auto& w = serve_world();
  serve::EyeballService service{w.pipeline, two_threads()};
  std::shared_ptr<const serve::ServingSnapshot> snap;
  // Publishing after every window maximizes reuse of previous-epoch
  // analyses — the regime where an incremental-refresh bug would show.
  // A refresh error at any epoch propagates into every later epoch's
  // reused entries, so one from-scratch differential at the end covers the
  // whole chain.
  for (const auto& window : w.churn.windows) {
    service.ingest(window);
    snap = service.publish();
    ASSERT_NE(snap, nullptr);
    ASSERT_EQ(snap->analyses().size(), snap->dataset().ases().size());
  }
  const auto from_scratch = w.pipeline.analyze_all(snap->dataset().ases(), 2);
  ASSERT_EQ(snap->analyses().size(), from_scratch.size());
  for (std::size_t i = 0; i < from_scratch.size(); ++i) {
    EXPECT_TRUE(same_analysis(snap->analyses()[i], from_scratch[i]))
        << "as index " << i;
  }
  // After all windows, the served dataset equals the one-shot reference.
  EXPECT_EQ(snap->dataset().stats(), w.reference.stats())
      << core::diff_stats(w.reference.stats(), snap->dataset().stats());
}

// ---- Durability: publish persists, restore re-serves ----

TEST(Serving, RestoreThenServeRoundTrip) {
  const auto& w = serve_world();
  const std::string dir = ::testing::TempDir() + "eyeball_serving_test_round_trip";
  std::filesystem::remove_all(dir);

  serve::ServiceConfig writer_config = two_threads();
  writer_config.snapshot_dir = dir;
  serve::EyeballService writer{w.pipeline, writer_config};
  // Two publish cycles: the durability hook fires per publish, so the
  // directory ends up holding multiple generations and restore must pick
  // the newest.
  writer.ingest(w.churn.windows[0]);
  std::shared_ptr<const serve::ServingSnapshot> published = writer.publish();
  ASSERT_TRUE(writer.last_save_status().ok()) << writer.last_save_status().message();
  for (std::size_t i = 1; i < w.churn.windows.size(); ++i) {
    writer.ingest(w.churn.windows[i]);
  }
  published = writer.publish();
  ASSERT_TRUE(writer.last_save_status().ok()) << writer.last_save_status().message();
  EXPECT_EQ(writer.builder().last_generation(), 2u);

  // A cold service restores from the directory and serves the same answers.
  serve::EyeballService restored{w.pipeline, two_threads()};
  core::SnapshotRestoreInfo info;
  const auto status = restored.restore(dir, &info);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_GT(info.generation, 0u);
  const auto snap = restored.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 1u);  // fresh service, first published epoch
  expect_same_snapshot(*published, *snap, "restore round trip");

  // A restore from an empty directory refuses and leaves serving intact.
  const std::string empty = ::testing::TempDir() + "eyeball_serving_test_empty";
  std::filesystem::remove_all(empty);
  std::filesystem::create_directories(empty);
  const auto refusal = restored.restore(empty);
  EXPECT_EQ(refusal.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(restored.snapshot(), snap);
}

TEST(Serving, RestoreRefusesWhenEveryGenerationIsDeadAndKeepsServing) {
  const auto& w = serve_world();
  const std::string dir =
      ::testing::TempDir() + "eyeball_serving_test_dead_generations";
  std::filesystem::remove_all(dir);
  auto& fs = util::local_filesystem();

  // A writer leaves two generations behind.
  serve::ServiceConfig writer_config = two_threads();
  writer_config.snapshot_dir = dir;
  serve::EyeballService writer{w.pipeline, writer_config};
  writer.ingest(w.churn.windows[0]);
  ASSERT_NE(writer.publish(), nullptr);
  writer.ingest(w.churn.windows[1]);
  ASSERT_NE(writer.publish(), nullptr);
  ASSERT_TRUE(writer.last_save_status().ok());

  // Kill both: generation 2 gets a flipped body byte (media corruption);
  // generation 1 gets its format version bumped AND the file CRC redone —
  // an intact file from a future format (the version-skew recipe from
  // snapshot_test.cpp), which must refuse as kVersionMismatch, not rot.
  const std::string gen2 = dir + "/snapshot.00000000000000000002.eyb";
  const std::string gen1 = dir + "/snapshot.00000000000000000001.eyb";
  std::vector<std::byte> bytes;
  ASSERT_TRUE(fs.read_file(gen2, bytes).ok());
  bytes[bytes.size() / 2] ^= std::byte{0x20};
  ASSERT_TRUE(util::atomic_write_file(fs, gen2, bytes).ok());
  ASSERT_TRUE(fs.read_file(gen1, bytes).ok());
  bytes[8] = std::byte{2};  // format version field, little-endian low byte
  const std::size_t body_size = bytes.size() - 12;
  const std::uint32_t crc = util::crc32c({bytes.data(), body_size});
  for (int i = 0; i < 4; ++i) {
    bytes[body_size + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((crc >> (8 * i)) & 0xffU);
  }
  ASSERT_TRUE(util::atomic_write_file(fs, gen1, bytes).ok());

  // A service already serving epoch 1 attempts the restore.
  serve::EyeballService service{w.pipeline, two_threads()};
  service.ingest(w.churn.windows[0]);
  const auto serving = service.publish();
  ASSERT_NE(serving, nullptr);

  const auto status = service.restore(dir);
  ASSERT_FALSE(status.ok());
  // The newest generation's verdict is the one reported.
  EXPECT_EQ(status.code(), util::StatusCode::kCorruption);

  // Serving untouched: same pinned epoch, health still Healthy (a refused
  // restore changes nothing about the running service).
  EXPECT_EQ(service.snapshot(), serving);
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.health().state, serve::ServiceHealth::kHealthy);

  // The corrupt generation was quarantined with its verdict; the
  // version-skewed file is intact property of another binary and stays.
  EXPECT_FALSE(std::filesystem::exists(gen2));
  EXPECT_TRUE(
      std::filesystem::exists(gen2 + std::string{util::kQuarantineSuffix}));
  EXPECT_TRUE(std::filesystem::exists(gen1));

  // Life goes on: publish-from-scratch still works and advances the epoch.
  service.ingest(w.churn.windows[1]);
  const auto next = service.publish();
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->epoch(), 2u);
}

// ---- The health state machine and the publish exception firewall ----

TEST(Serving, PublishFirewallTripsToReadOnlyAndCarryoverHealsTheNextEpoch) {
  const auto& w = serve_world();
  serve::ServiceConfig config = two_threads();
  bool armed = false;
  config.publish_fault_hook = [&armed] {
    if (armed) throw std::runtime_error("injected analysis failure");
  };
  serve::EyeballService service{w.pipeline, config};
  service.ingest(w.churn.windows[0]);
  const auto first = service.publish();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(service.health().state, serve::ServiceHealth::kHealthy);

  // The throw lands after finalize() has cleared the touched set — the
  // worst spot: without the carry-over, the next publish would silently
  // serve stale analyses for every AS window 1 touched.
  service.ingest(w.churn.windows[1]);
  armed = true;
  const auto tripped = service.publish();
  EXPECT_EQ(tripped, nullptr);
  EXPECT_EQ(service.last_publish_status().code(), util::StatusCode::kInternal);
  EXPECT_NE(
      service.last_publish_status().message().find("injected analysis failure"),
      std::string::npos);
  // The previous epoch keeps serving...
  EXPECT_EQ(service.snapshot(), first);
  EXPECT_EQ(service.epoch(), 1u);
  // ...and health says read-only.
  const auto report = service.health();
  EXPECT_EQ(report.state, serve::ServiceHealth::kReadOnly);
  EXPECT_EQ(report.times_read_only, 1u);
  EXPECT_FALSE(report.last_error.ok());

  // Recovery publish with NO new ingest: only the carried-over work list
  // tells refresh_analyses what window 1 changed.
  armed = false;
  const auto healed = service.publish();
  ASSERT_NE(healed, nullptr);
  EXPECT_EQ(healed->epoch(), 2u);
  EXPECT_TRUE(service.last_publish_status().ok());
  const auto recovered = service.health();
  EXPECT_EQ(recovered.state, serve::ServiceHealth::kHealthy);
  EXPECT_EQ(recovered.times_read_only, 1u);
  // The error stays on record for post-mortem after recovery.
  EXPECT_FALSE(recovered.last_error.ok());

  // The differential oracle: the healed epoch equals a from-scratch
  // analysis — no AS is served a stale window-0 answer.
  const auto from_scratch = w.pipeline.analyze_all(healed->dataset().ases(), 2);
  ASSERT_EQ(healed->analyses().size(), from_scratch.size());
  for (std::size_t i = 0; i < from_scratch.size(); ++i) {
    EXPECT_TRUE(same_analysis(healed->analyses()[i], from_scratch[i]))
        << "as index " << i;
  }
}

TEST(Serving, DurabilityFaultsRetryDeterministicallyAndDegradeUntilRecovery) {
  const auto& w = serve_world();
  const std::string dir = ::testing::TempDir() + "eyeball_serving_test_degraded";
  std::filesystem::remove_all(dir);

  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  util::FakeClock clock;
  serve::ServiceConfig config = two_threads();
  config.snapshot_dir = dir;
  config.filesystem = &fs;
  config.clock = &clock;
  serve::EyeballService service{w.pipeline, config};

  // One transient open failure: the supervised save absorbs it — one
  // backoff sleep, then success; health never leaves Healthy.
  service.ingest(w.churn.windows[0]);
  fs.arm_transient_open_failures(1);
  ASSERT_NE(service.publish(), nullptr);
  EXPECT_TRUE(service.last_save_status().ok()) << service.last_save_status();
  EXPECT_EQ(service.last_save_retry().attempts_made(), 2u);
  EXPECT_EQ(service.health().state, serve::ServiceHealth::kHealthy);
  ASSERT_EQ(clock.sleeps().size(), 1u);
  EXPECT_EQ(clock.sleeps()[0], std::chrono::milliseconds{10});

  // Exhaustion: exactly max_attempts armed failures, so every attempt is
  // refused and the injector is clean afterwards.  The epoch still
  // publishes — only durability degrades — and the backoff schedule is a
  // pure function of the fault pattern: 10ms then 20ms.
  clock.clear_sleeps();
  service.ingest(w.churn.windows[1]);
  fs.arm_transient_open_failures(3);
  const auto published = service.publish();
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->epoch(), 2u);
  EXPECT_EQ(service.last_save_status().code(), util::StatusCode::kIoError);
  EXPECT_EQ(service.last_save_retry().attempts_made(), 3u);
  const auto sleeps = clock.sleeps();
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], std::chrono::milliseconds{10});
  EXPECT_EQ(sleeps[1], std::chrono::milliseconds{20});
  auto report = service.health();
  EXPECT_EQ(report.state, serve::ServiceHealth::kDegradedDurability);
  EXPECT_EQ(report.times_degraded, 1u);
  EXPECT_FALSE(report.last_error.ok());

  // Faults cleared: the next publish re-saves and health returns to
  // Healthy, with the exhaustion verdict kept on record.
  const auto healed = service.publish();
  ASSERT_NE(healed, nullptr);
  EXPECT_TRUE(service.last_save_status().ok()) << service.last_save_status();
  report = service.health();
  EXPECT_EQ(report.state, serve::ServiceHealth::kHealthy);
  EXPECT_EQ(report.times_degraded, 1u);
  EXPECT_FALSE(report.last_error.ok());

  // And what landed on disk despite the storm restores on a cold replica.
  serve::EyeballService replica{w.pipeline, two_threads()};
  ASSERT_TRUE(replica.restore(dir).ok());
  ASSERT_NE(replica.snapshot(), nullptr);
  expect_same_snapshot(*healed, *replica.snapshot(), "post-storm restore");
}

// ---- The TSan storm: readers vs. writer, no torn epochs ----

TEST(Serving, ArtifactBackedEpochsSurviveConcurrentThawStorm) {
  // The artifact-backed sibling of the torn-epoch storm below: a replica
  // restores from a serving artifact, readers hammer it — racing each other
  // into the lazy call_once thaw of every AS — while the writer keeps
  // publishing newer epochs (both in-memory ones from fresh ingests and
  // fresh artifact-backed ones from repeated restores).  Runs under the
  // TSan gate, which is the point: a data race in the thaw path or in
  // artifact-backed snapshot publication is a hard failure here.
  const auto& w = serve_world();
  const std::string path =
      ::testing::TempDir() + "eyeball_serving_artifact_storm.eyb";
  std::filesystem::remove(path);

  // Writer-side service emits the artifact on publish.
  serve::ServiceConfig writer_config = two_threads();
  writer_config.artifact_path = path;
  serve::EyeballService writer{w.pipeline, writer_config};
  writer.ingest(w.churn.windows[0]);
  const auto published = writer.publish();
  ASSERT_NE(published, nullptr);
  ASSERT_TRUE(writer.last_artifact_status().ok()) << writer.last_artifact_status();

  serve::EyeballService replica{w.pipeline, two_threads()};
  ASSERT_TRUE(replica.restore_from_artifact(path).ok());
  const auto restored = replica.snapshot();
  ASSERT_NE(restored, nullptr);
  ASSERT_TRUE(restored->artifact_backed());
  const std::size_t as_count = restored->as_count();
  ASSERT_EQ(as_count, published->as_count());

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> answered{0};

  const auto reader = [&] {
    std::uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = replica.snapshot();
      if (snap == nullptr) continue;
      if (snap->epoch() < last_epoch) ++violations;
      last_epoch = snap->epoch();
      // Full thaw sweep: every reader walks every AS, so first-touch
      // call_once thaws race between the threads on purpose.
      for (std::size_t i = 0; i < snap->as_count(); ++i) {
        const core::AsAnalysis* analysis = snap->analysis_at(i);
        if (analysis == nullptr || analysis->asn != snap->asn_at(i)) {
          ++violations;
          continue;
        }
        // Thawed answers must have stable addresses within a snapshot.
        if (snap->find(analysis->asn) != analysis) ++violations;
      }
      if (snap->find(net::Asn{0xFFFFFFFFu}) != nullptr) ++violations;
      ++answered;
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) readers.emplace_back(reader);

  // The writer alternates fresh in-memory epochs with fresh artifact-backed
  // ones; pinned readers must be unaffected either way.
  for (std::size_t i = 1; i < w.churn.windows.size(); ++i) {
    replica.ingest(w.churn.windows[i]);
    (void)replica.publish();
    ASSERT_TRUE(replica.restore_from_artifact(path).ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(answered.load(), 0u);

  // The snapshot pinned before the storm still answers, identically to the
  // writer's published epoch, after every later publish.
  for (std::size_t i = 0; i < as_count; ++i) {
    const core::AsAnalysis* thawed = restored->analysis_at(i);
    ASSERT_NE(thawed, nullptr);
    EXPECT_TRUE(same_analysis(*thawed, *published->analysis_at(i)))
        << "as index " << i;
  }
  std::filesystem::remove(path);
}

TEST(Serving, ConcurrentReadersNeverObserveTornEpoch) {
  const auto& w = serve_world();
  serve::EyeballService service{w.pipeline, two_threads()};
  const std::size_t total_windows = w.churn.windows.size();

  // A small probe set keeps each reader iteration cheap: the point of the
  // storm is many snapshot acquisitions racing the writer, not lookup
  // volume (the lookups themselves are covered by the epoch tests above).
  std::vector<net::Asn> probe;
  for (const auto& as : w.reference.ases()) {
    probe.push_back(as.asn);
    if (probe.size() == 8) break;
  }
  probe.push_back(net::Asn{0xFFFFFFFFu});  // one guaranteed miss

  std::atomic<bool> done{false};
  // gtest assertions are not thread-safe; readers tally violations and the
  // main thread asserts once after joining.
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> answered{0};

  const auto reader = [&] {
    std::uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      // Point query: the answer must be internally consistent and pinned
      // to exactly one published epoch.
      const auto ref = service.query(probe[answered.load(std::memory_order_relaxed) %
                                           probe.size()]);
      if (ref.snapshot != nullptr) {
        const auto& snap = *ref.snapshot;
        // A snapshot is torn if its parallel arrays disagree or its window
        // tally disagrees with its epoch (the writer publishes once per
        // window, so epoch k serves exactly k windows).
        if (snap.analyses().size() != snap.dataset().ases().size()) ++violations;
        if (snap.dataset().stats().windows.size() != snap.epoch()) ++violations;
        if (snap.epoch() == 0 || snap.epoch() > total_windows) ++violations;
        if (ref.analysis != nullptr &&
            snap.find(ref.analysis->asn) != ref.analysis) {
          ++violations;
        }
        // Epochs only move forward from any single reader's viewpoint.
        if (snap.epoch() < last_epoch) ++violations;
        last_epoch = snap.epoch();
        ++answered;
      }
      // Batch query: one epoch for the whole batch.
      const auto batch = service.query_batch(probe);
      if (batch.snapshot != nullptr) {
        if (batch.epoch() < last_epoch) ++violations;
        last_epoch = batch.epoch();
        for (std::size_t i = 0; i < probe.size(); ++i) {
          if (batch.analyses[i] != nullptr && batch.analyses[i]->asn != probe[i]) {
            ++violations;
          }
          if (batch.analyses[i] != nullptr &&
              batch.snapshot->find(probe[i]) != batch.analyses[i]) {
            ++violations;
          }
        }
        ++answered;
      }
      const auto stats = service.stats();
      if (stats.has_value() &&
          (stats->epoch == 0 || stats->epoch > total_windows ||
           stats->stats.windows.size() != stats->epoch)) {
        ++violations;
      }
      // Cede the core between iterations: on small machines spinning
      // readers would starve the writer's pool threads and turn a
      // seconds-long storm into minutes without adding interleavings.
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) readers.emplace_back(reader);

  // The writer ingests and publishes every window while readers hammer.
  for (const auto& window : w.churn.windows) {
    service.ingest(window);
    (void)service.publish();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(service.epoch(), total_windows);
  // Readers actually raced the writer (saw at least one published epoch).
  EXPECT_GT(answered.load(), 0u);
}

}  // namespace
}  // namespace eyeball
