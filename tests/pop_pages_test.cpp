#include <gtest/gtest.h>

#include "pipeline_fixture.hpp"
#include "validate/matching.hpp"
#include "validate/pop_pages.hpp"
#include "validate/reference.hpp"

namespace eyeball::validate {
namespace {

using eyeball::testing::shared_fixture;

class PopPagesTest : public ::testing::Test {
 protected:
  static const std::vector<ReferenceEntry>& reference() {
    static const auto instance =
        build_reference_dataset(shared_fixture().eco, shared_fixture().gaz, 8);
    return instance;
  }
};

TEST_F(PopPagesTest, BulletListRoundTrip) {
  const auto& f = shared_fixture();
  for (const auto& entry : reference()) {
    const auto page = render_pop_page(entry, f.gaz, PageFormat::kBulletList);
    const auto scraped = scrape_pop_page(page);
    ASSERT_TRUE(scraped) << page;
    ASSERT_EQ(scraped->size(), entry.pops.size());
    for (std::size_t i = 0; i < entry.pops.size(); ++i) {
      EXPECT_LT(geo::distance_km((*scraped)[i].location, entry.pops[i].location), 0.1);
      EXPECT_EQ((*scraped)[i].city_name, f.gaz.city(entry.pops[i].city).name);
    }
  }
}

TEST_F(PopPagesTest, TableRoundTrip) {
  const auto& f = shared_fixture();
  const auto& entry = reference().front();
  const auto page = render_pop_page(entry, f.gaz, PageFormat::kTable);
  const auto scraped = scrape_pop_page(page);
  ASSERT_TRUE(scraped);
  ASSERT_EQ(scraped->size(), entry.pops.size());
  EXPECT_EQ((*scraped)[0].city_name, f.gaz.city(entry.pops[0].city).name);
}

TEST_F(PopPagesTest, ProseRoundTripRecoversLocations) {
  const auto& f = shared_fixture();
  const auto& entry = reference().front();
  const auto page = render_pop_page(entry, f.gaz, PageFormat::kProse);
  const auto scraped = scrape_pop_page(page);
  ASSERT_TRUE(scraped);
  ASSERT_EQ(scraped->size(), entry.pops.size());
  // Prose coordinates carry only 2 decimals (~1 km): allow a small error.
  for (std::size_t i = 0; i < entry.pops.size(); ++i) {
    EXPECT_LT(geo::distance_km((*scraped)[i].location, entry.pops[i].location), 2.0);
  }
}

TEST_F(PopPagesTest, ProseHandlesSouthernWesternHemispheres) {
  ReferenceEntry entry;
  entry.asn = net::Asn{65000};
  const auto& f = shared_fixture();
  const auto sydney = f.gaz.find_by_name("Sydney");
  const auto buenos_aires = f.gaz.find_by_name("Buenos Aires");
  ASSERT_TRUE(sydney && buenos_aires);
  entry.pops.push_back({f.gaz.city(*sydney).location, *sydney,
                        PublishedPop::Kind::kService});
  entry.pops.push_back({f.gaz.city(*buenos_aires).location, *buenos_aires,
                        PublishedPop::Kind::kService});
  const auto page = render_pop_page(entry, f.gaz, PageFormat::kProse);
  const auto scraped = scrape_pop_page(page);
  ASSERT_TRUE(scraped);
  ASSERT_EQ(scraped->size(), 2u);
  EXPECT_LT((*scraped)[0].location.lat_deg, 0.0);  // Sydney is south
  EXPECT_LT((*scraped)[1].location.lon_deg, 0.0);  // Buenos Aires is west
}

TEST_F(PopPagesTest, ScraperIgnoresJunk) {
  EXPECT_FALSE(scrape_pop_page("About us\nContact\nCareers\n"));
  EXPECT_FALSE(scrape_pop_page(""));
  // Junk lines between valid ones are skipped, not fatal.
  const auto scraped = scrape_pop_page(
      "Welcome!\n* Milan (45.4642, 9.1900) - core PoP\n<script>junk</script>\n");
  ASSERT_TRUE(scraped);
  EXPECT_EQ(scraped->size(), 1u);
  EXPECT_EQ((*scraped)[0].city_name, "Milan");
}

TEST_F(PopPagesTest, ScraperSkipsBareIntegers) {
  // Postal codes / AS numbers without decimals must not become coordinates.
  EXPECT_FALSE(scrape_pop_page("* Milan office, ZIP 20121, phone 02 1234\n"));
}

TEST_F(PopPagesTest, ScrapedDatasetMatchesDirectDataset) {
  // The textual channel must not lose PoPs: matching scraped locations
  // against the direct reference locations is perfect at city radius.
  const auto& f = shared_fixture();
  const auto scraped = scrape_reference_dataset(reference(), f.gaz);
  ASSERT_EQ(scraped.size(), reference().size());
  for (std::size_t i = 0; i < scraped.size(); ++i) {
    const auto stats = match_pops(reference()[i].locations(), scraped[i], 5.0);
    EXPECT_TRUE(stats.covers_reference()) << "entry " << i;
    EXPECT_TRUE(stats.perfect_precision()) << "entry " << i;
  }
}

}  // namespace
}  // namespace eyeball::validate
