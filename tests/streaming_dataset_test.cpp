// Differential harness for the streaming §2 conditioning path: replays the
// same longitudinal sample stream through (a) a one-shot build over the
// deduplicated window concatenation, (b) per-window ingest, and (c)
// randomly-sized batch splits, and pins the StreamingDatasetBuilder
// equivalence contract — peers, per-AS peer order, stats, and kept-AS list
// byte-identical at any thread count and any window split.  Runs under the
// TSan gate next to ParallelDataset.* (tools/check.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include "core/streaming_dataset.hpp"
#include "geodb/geo_database.hpp"
#include "p2p/churn.hpp"
#include "pipeline_fixture.hpp"
#include "util/rng.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;

/// Longitudinal stream over the shared fixture's world, plus the one-shot
/// reference dataset the streaming path must reproduce.  min_peers_per_as
/// is lowered so single windows sit below the threshold ASes later cross —
/// the interesting streaming regime.
struct StreamWorld {
  const testing::PipelineFixture& f = shared_fixture();
  core::DatasetConfig config = [] {
    auto dataset_config = shared_fixture().pipeline.config().dataset;
    dataset_config.min_peers_per_as = 300;
    return dataset_config;
  }();
  core::DatasetBuilder builder{f.primary, f.secondary, f.mapper, config};
  p2p::LongitudinalResult churn = [this] {
    p2p::CrawlerConfig crawl_config;
    crawl_config.seed = 77;
    crawl_config.coverage = 0.05;
    p2p::ChurnConfig churn_config;
    churn_config.seed = 2009;
    churn_config.windows = 5;
    churn_config.lease_survival = 0.6;
    return p2p::longitudinal_crawl(f.eco, f.gaz, crawl_config, churn_config);
  }();
  /// The raw stream: windows concatenated in window order, duplicates kept.
  std::vector<p2p::PeerSample> concatenated = [this] {
    std::vector<p2p::PeerSample> out;
    for (const auto& window : churn.windows) {
      out.insert(out.end(), window.begin(), window.end());
    }
    return out;
  }();
  /// What a streaming run admits — the one-shot reference input.
  std::vector<p2p::PeerSample> deduped = core::dedup_first_observation(concatenated);
  core::TargetDataset reference = builder.build(deduped, 1);

  [[nodiscard]] core::StreamingDatasetBuilder streaming() const {
    return builder.streaming();
  }
};

const StreamWorld& stream_world() {
  static const StreamWorld instance;
  return instance;
}

void expect_same_dataset(const core::TargetDataset& reference,
                         const core::TargetDataset& candidate, const char* context) {
  EXPECT_EQ(reference.stats(), candidate.stats())
      << context << " diverged: "
      << core::diff_stats(reference.stats(), candidate.stats());
  ASSERT_EQ(reference.ases().size(), candidate.ases().size()) << context;
  for (std::size_t a = 0; a < reference.ases().size(); ++a) {
    const auto& ra = reference.ases()[a];
    const auto& ca = candidate.ases()[a];
    EXPECT_EQ(ra.asn, ca.asn) << context << " as index " << a;
    ASSERT_EQ(ra.peers.size(), ca.peers.size()) << context << " as index " << a;
    for (std::size_t p = 0; p < ra.peers.size(); ++p) {
      const auto& rp = ra.peers[p];
      const auto& cp = ca.peers[p];
      const bool same = rp.ip == cp.ip && rp.app == cp.app &&
                        rp.location == cp.location &&
                        rp.geo_error_km == cp.geo_error_km &&
                        rp.reported_city == cp.reported_city;
      EXPECT_TRUE(same) << context << " as index " << a << " peer " << p;
      if (!same) return;
    }
  }
}

// ---- The differential property, over the three replay shapes ----

TEST(StreamingDataset, DedupFirstObservationMatchesChurnUnion) {
  const auto& w = stream_world();
  // The admitted stream is exactly longitudinal_crawl's union: same size as
  // the cumulative-unique tally and the same (app, ip) set as `samples`.
  ASSERT_EQ(w.deduped.size(), w.churn.cumulative_unique.back());
  auto sorted = w.deduped;
  std::sort(sorted.begin(), sorted.end(),
            [](const p2p::PeerSample& a, const p2p::PeerSample& b) {
              return a.app != b.app ? a.app < b.app : a.ip < b.ip;
            });
  EXPECT_EQ(sorted, w.churn.samples);
}

TEST(StreamingDataset, PerWindowIngestMatchesOneShotAcrossThreadCounts) {
  const auto& w = stream_world();
  const std::size_t hw = 0;  // one shard per hardware thread
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    auto streaming = w.streaming();
    for (const auto& window : w.churn.windows) streaming.ingest(window, threads);
    expect_same_dataset(
        w.reference, streaming.finalize(threads),
        ("per-window ingest, threads=" + std::to_string(threads)).c_str());
  }
}

TEST(StreamingDataset, RandomBatchSplitsMatchOneShot) {
  const auto& w = stream_world();
  const std::span<const p2p::PeerSample> stream{w.concatenated};
  // Property-style replays: batch boundaries ignore window boundaries
  // entirely, so dedup and merge must hold at ANY split, not just the
  // crawler's.  Thread count varies per replay.
  const std::size_t thread_axis[] = {1, 2, 0};
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    util::Rng rng{seed};
    auto streaming = w.streaming();
    const std::size_t threads = thread_axis[seed % 3];
    std::size_t cursor = 0;
    std::size_t batches = 0;
    while (cursor < stream.size()) {
      // Batch sizes from empty to a third of the stream, hitting the
      // empty-batch and tiny-batch edges with real probability.
      const auto batch =
          std::min(stream.size() - cursor, rng.uniform_index(stream.size() / 3 + 2));
      streaming.ingest(stream.subspan(cursor, batch), threads);
      cursor += batch;
      ++batches;
    }
    ASSERT_GT(batches, 3u) << "degenerate split; property has no force";
    expect_same_dataset(w.reference, streaming.finalize(threads),
                        ("random splits, seed=" + std::to_string(seed)).c_str());
  }
}

// ---- Streaming edge cases ----

TEST(StreamingDataset, EmptyWindowsAreRecordedAndHarmless) {
  const auto& w = stream_world();
  auto streaming = w.streaming();
  streaming.ingest({});  // empty FIRST window
  streaming.ingest(w.churn.windows[0], 2);
  streaming.ingest({});  // empty mid-stream window
  for (std::size_t i = 1; i < w.churn.windows.size(); ++i) {
    streaming.ingest(w.churn.windows[i], 2);
  }
  const auto& windows = streaming.stats().windows;
  ASSERT_EQ(windows.size(), w.churn.windows.size() + 2);
  EXPECT_EQ(windows.front(), (core::WindowStats{0, 0, 0, 0}));
  EXPECT_EQ(windows[2].offered, 0u);
  EXPECT_EQ(windows[2].cumulative_unique, windows[1].cumulative_unique);
  expect_same_dataset(w.reference, streaming.finalize(2), "empty windows");
}

TEST(StreamingDataset, DuplicateWindowDedupsToFirstObservation) {
  const auto& w = stream_world();
  auto streaming = w.streaming();
  streaming.ingest(w.churn.windows[0], 2);
  // Replaying the same window must be a no-op for the conditioned state...
  streaming.ingest(w.churn.windows[0], 2);
  const auto& windows = streaming.stats().windows;
  ASSERT_EQ(windows.size(), 2u);
  // ...but fully visible in the per-window snapshot counters.  A window can
  // carry intra-window (app, ip) repeats, so the replay's duplicate count
  // equals the first window's ADMITTED count, not its offered count.
  EXPECT_EQ(windows[1].offered, windows[0].offered);
  EXPECT_EQ(windows[1].duplicates, windows[0].admitted + windows[0].duplicates);
  EXPECT_EQ(windows[1].admitted, 0u);
  EXPECT_EQ(windows[1].cumulative_unique, windows[0].cumulative_unique);
  for (std::size_t i = 1; i < w.churn.windows.size(); ++i) {
    streaming.ingest(w.churn.windows[i], 2);
  }
  expect_same_dataset(w.reference, streaming.finalize(2), "duplicate window");
}

TEST(StreamingDataset, FinalizePerWindowMatchesPrefixBuildsAndReFinalizes) {
  const auto& w = stream_world();
  auto streaming = w.streaming();
  std::vector<p2p::PeerSample> prefix;
  std::vector<std::set<std::uint32_t>> kept_per_window;
  for (const auto& window : w.churn.windows) {
    streaming.ingest(window, 2);
    prefix.insert(prefix.end(), window.begin(), window.end());
    // finalize() is non-destructive: this snapshot must equal the one-shot
    // build over the deduplicated prefix, and the NEXT ingest must keep
    // working on the live buckets (re-finalize covered by the next lap).
    const auto snapshot = streaming.finalize(2);
    const auto prefix_reference =
        w.builder.build(core::dedup_first_observation(prefix), 1);
    expect_same_dataset(prefix_reference, snapshot,
                        ("prefix after window " +
                         std::to_string(kept_per_window.size()))
                            .c_str());
    std::set<std::uint32_t> kept;
    for (const auto& as : snapshot.ases()) kept.insert(net::value_of(as.asn));
    kept_per_window.push_back(std::move(kept));
  }
  // An AS that crosses min_peers_per_as only at window k must appear in
  // finalize() exactly from window k on — byte-identity with the prefix
  // builds above already pins "exactly"; here we pin that the stream
  // actually exercises a crossing (the test would otherwise have no force).
  std::size_t crossers = 0;
  for (const auto asn : kept_per_window.back()) {
    if (!kept_per_window.front().contains(asn)) ++crossers;
  }
  EXPECT_GT(crossers, 0u)
      << "no AS crossed the min-peers threshold mid-stream; shrink "
         "min_peers_per_as or the window count in StreamWorld";
}

// ---- Stats, memos, reset, incremental re-analysis ----

TEST(StreamingDataset, StatsAccountForEveryAdmittedSample) {
  const auto& w = stream_world();
  auto streaming = w.streaming();
  std::size_t offered_total = 0;
  for (const auto& window : w.churn.windows) {
    streaming.ingest(window, 2);
    offered_total += window.size();
  }
  const auto& stats = streaming.stats();
  ASSERT_EQ(stats.windows.size(), w.churn.windows.size());
  std::size_t admitted_total = 0;
  std::size_t duplicates_total = 0;
  for (std::size_t i = 0; i < stats.windows.size(); ++i) {
    const auto& window = stats.windows[i];
    EXPECT_EQ(window.offered, w.churn.windows[i].size());
    EXPECT_EQ(window.admitted + window.duplicates, window.offered);
    EXPECT_EQ(window.cumulative_unique, w.churn.cumulative_unique[i]);
    admitted_total += window.admitted;
    duplicates_total += window.duplicates;
  }
  EXPECT_EQ(admitted_total + duplicates_total, offered_total);
  EXPECT_EQ(stats.raw_samples, admitted_total);
  EXPECT_EQ(streaming.unique_samples(), admitted_total);
  EXPECT_EQ(streaming.windows_ingested(), w.churn.windows.size());

  // The finalized snapshot keeps the window trail and the one-shot
  // conservation law: every admitted sample is dropped or kept somewhere.
  const auto dataset = streaming.finalize(2);
  EXPECT_EQ(dataset.stats().windows.size(), w.churn.windows.size());
  EXPECT_EQ(dataset.stats().raw_samples,
            dataset.stats().missing_geo + dataset.stats().high_error +
                dataset.stats().unmapped_as + dataset.stats().peers_in_small_ases +
                dataset.stats().final_peers);
}

TEST(StreamingDataset, PersistentMemosObserveCrossWindowRepetition) {
  const auto& w = stream_world();
  auto streaming = w.streaming();
  streaming.ingest(w.churn.windows[0], 2);
  const auto hits_after_first = streaming.memo_hits();
  const auto misses_after_first = streaming.memo_misses();
  EXPECT_GT(misses_after_first, 0u);
  for (std::size_t i = 1; i < w.churn.windows.size(); ++i) {
    streaming.ingest(w.churn.windows[i], 2);
  }
  // The same addresses recur across windows (same PoP pools, new users or
  // new apps), so the persistent memos must keep accruing hits after the
  // first window — the whole point of not rebuilding them per ingest.
  EXPECT_GT(streaming.memo_hits(), hits_after_first);
  EXPECT_GT(streaming.memo_misses(), misses_after_first);
}

TEST(StreamingDataset, ResetMakesTheBuilderFresh) {
  const auto& w = stream_world();
  auto streaming = w.streaming();
  for (const auto& window : w.churn.windows) streaming.ingest(window, 2);
  EXPECT_GT(streaming.memo_hit_rate(), 0.0);
  streaming.reset();
  EXPECT_EQ(streaming.windows_ingested(), 0u);
  EXPECT_EQ(streaming.unique_samples(), 0u);
  EXPECT_EQ(streaming.memo_hits(), 0u);
  EXPECT_EQ(streaming.memo_misses(), 0u);
  // The hit-rate pin: reset() clears the memo counters too, so the rate
  // reads exactly like a freshly constructed builder's — not a stale
  // average over forgotten windows.
  EXPECT_EQ(streaming.memo_hit_rate(), 0.0);
  EXPECT_EQ(streaming.memo_hit_rate(), w.streaming().memo_hit_rate());
  EXPECT_TRUE(streaming.touched_asns().empty());
  for (const auto& window : w.churn.windows) streaming.ingest(window, 2);
  expect_same_dataset(w.reference, streaming.finalize(2), "after reset");
}

// ---- Hostile-input hardening ----

/// windows[0] with garbage spliced in: special-use IPs (loopback, RFC 1918,
/// CGNAT, link-local, multicast, 0/8) and out-of-range app tags — the
/// shapes a hostile or corrupted crawl feed produces.
[[nodiscard]] std::vector<p2p::PeerSample> hostile_window(
    std::span<const p2p::PeerSample> clean) {
  std::vector<p2p::PeerSample> out;
  const std::uint32_t bad_ips[] = {
      0x00000001u,              // 0.0.0.1
      (10u << 24) | 0x010203u,  // 10.1.2.3
      (127u << 24) | 1u,        // 127.0.0.1
      (224u << 24) | 5u,        // 224.0.0.5 (multicast)
      0xffffffffu,              // 255.255.255.255
      0xac100001u,              // 172.16.0.1 (RFC 1918)
      0xac1ffffeu,              // 172.31.255.254 (RFC 1918, range end)
      0xc0a80101u,              // 192.168.1.1 (RFC 1918)
      0xa9fe0009u,              // 169.254.0.9 (link-local)
      0x64400007u,              // 100.64.0.7 (CGNAT)
      0x647fffffu,              // 100.127.255.255 (CGNAT, range end)
  };
  constexpr std::size_t kBadIps = std::size(bad_ips);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    out.push_back(clean[i]);
    if (i % 7 == 0) {
      out.push_back(p2p::PeerSample{net::Ipv4Address{bad_ips[i % kBadIps]},
                                    clean[i].app});
    }
    if (i % 11 == 0) {
      // Valid IP, impossible app tag.
      out.push_back(p2p::PeerSample{clean[i].ip, static_cast<p2p::App>(200)});
    }
  }
  return out;
}

TEST(StreamingDataset, HostileSamplesAreRejectedAtTheDoorAndCounted) {
  const auto& w = stream_world();
  auto streaming = w.streaming();
  const auto hostile = hostile_window(w.churn.windows[0]);
  ASSERT_GT(hostile.size(), w.churn.windows[0].size());
  const std::size_t injected = hostile.size() - w.churn.windows[0].size();

  streaming.ingest(hostile, 2);
  const auto& window = streaming.stats().windows.front();
  // Every injected sample was refused, none leaked into the dedup set, and
  // the conservation law gains its third term.
  EXPECT_EQ(window.rejected, injected);
  EXPECT_EQ(window.offered, hostile.size());
  EXPECT_EQ(window.admitted + window.duplicates + window.rejected, window.offered);
  EXPECT_EQ(streaming.stats().rejected_samples, injected);
  EXPECT_EQ(streaming.unique_samples(), streaming.stats().raw_samples);

  // Graceful degradation, not contamination: the remaining windows ingest
  // normally and the conditioned dataset is the clean-stream reference.
  for (std::size_t i = 1; i < w.churn.windows.size(); ++i) {
    streaming.ingest(w.churn.windows[i], 2);
  }
  expect_same_dataset(w.reference, streaming.finalize(2), "hostile window");
}

TEST(StreamingDataset, AdmissionDoorRejectsSpecialUseRangesExactly) {
  // The door must reject every special-use range edge-to-edge and admit the
  // immediately adjacent public space.  dedup_first_observation is the
  // one-shot door, pinned in lockstep with ingest() by the next test, so
  // probing it probes both.
  const std::uint32_t rejected_ips[] = {
      0x00000000u, 0x00ffffffu,  // 0.0.0.0/8
      0x0a000000u, 0x0affffffu,  // 10.0.0.0/8
      0x64400000u, 0x647fffffu,  // 100.64.0.0/10 (CGNAT)
      0x7f000000u, 0x7fffffffu,  // 127.0.0.0/8
      0xa9fe0000u, 0xa9feffffu,  // 169.254.0.0/16 (link-local)
      0xac100000u, 0xac1fffffu,  // 172.16.0.0/12
      0xc0a80000u, 0xc0a8ffffu,  // 192.168.0.0/16
      0xe0000000u, 0xffffffffu,  // 224.0.0.0 and above
  };
  const std::uint32_t admitted_ips[] = {
      0x01000000u,               // 1.0.0.0 (first public address)
      0x09ffffffu, 0x0b000000u,  // around 10/8
      0x643fffffu, 0x64800000u,  // around 100.64/10
      0x7effffffu, 0x80000000u,  // around 127/8
      0xa9fdffffu, 0xa9ff0000u,  // around 169.254/16
      0xac0fffffu, 0xac200000u,  // around 172.16/12
      0xc0a7ffffu, 0xc0a90000u,  // around 192.168/16
      0xdfffffffu,               // 223.255.255.255 (last public address)
  };
  std::vector<p2p::PeerSample> probe;
  for (const auto ip : rejected_ips) {
    probe.push_back(p2p::PeerSample{net::Ipv4Address{ip}, p2p::App::kKad});
  }
  for (const auto ip : admitted_ips) {
    probe.push_back(p2p::PeerSample{net::Ipv4Address{ip}, p2p::App::kKad});
  }
  const auto admitted = core::dedup_first_observation(probe);
  ASSERT_EQ(admitted.size(), std::size(admitted_ips));
  for (std::size_t i = 0; i < admitted.size(); ++i) {
    EXPECT_EQ(admitted[i].ip.value(), admitted_ips[i]) << "probe index " << i;
  }

  // The ingest door agrees IP for IP: everything rejected above is counted
  // as rejected, everything admitted above enters the dedup set.
  const auto& w = stream_world();
  auto streaming = w.streaming();
  streaming.ingest(probe);
  const auto& window = streaming.stats().windows.front();
  EXPECT_EQ(window.rejected, std::size(rejected_ips));
  EXPECT_EQ(window.admitted, std::size(admitted_ips));
  EXPECT_EQ(window.duplicates, 0u);
}

TEST(StreamingDataset, DedupAppliesTheSameDoorAsIngest) {
  const auto& w = stream_world();
  // The one-shot equivalent of a hostile stream must admit exactly what the
  // streaming door admits, or the equivalence contract dies on bad input.
  const auto hostile = hostile_window(w.churn.windows[0]);
  std::vector<p2p::PeerSample> hostile_concat{hostile.begin(), hostile.end()};
  for (std::size_t i = 1; i < w.churn.windows.size(); ++i) {
    hostile_concat.insert(hostile_concat.end(), w.churn.windows[i].begin(),
                          w.churn.windows[i].end());
  }
  EXPECT_EQ(core::dedup_first_observation(hostile_concat), w.deduped);
}

/// Primary-database decorator returning NaN/out-of-range coordinates for a
/// deterministic subset of IPs — the invalid rows Gouel et al. and Shavitt
/// & Zilberman document in real geolocation databases.
class PoisonedDatabase final : public geodb::GeoDatabase {
 public:
  explicit PoisonedDatabase(const geodb::GeoDatabase& base) : base_(base) {}

  [[nodiscard]] std::optional<geodb::GeoRecord> lookup(
      net::Ipv4Address ip) const override {
    auto record = base_.lookup(ip);
    if (record && ip.value() % 5 == 0) {
      record->location = ip.value() % 10 == 0
                             ? geo::GeoPoint{std::numeric_limits<double>::quiet_NaN(),
                                             record->location.lon_deg}
                             : geo::GeoPoint{record->location.lat_deg, 361.0};
    }
    return record;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "poisoned";
  }

 private:
  const geodb::GeoDatabase& base_;
};

TEST(StreamingDataset, CorruptDatabaseRowsAreRejectedNotPropagated) {
  const auto& w = stream_world();
  const PoisonedDatabase poisoned{w.f.primary};
  core::StreamingDatasetBuilder streaming{poisoned, w.f.secondary, w.f.mapper,
                                          w.config};
  for (const auto& window : w.churn.windows) streaming.ingest(window, 2);
  const auto dataset = streaming.finalize(2);
  const auto& stats = dataset.stats();
  ASSERT_GT(stats.rejected_samples, 0u);

  // Conservation with the rejected term: every admitted sample is rejected,
  // dropped by a conditioning stage, or kept.
  EXPECT_EQ(stats.raw_samples,
            stats.rejected_samples + stats.missing_geo + stats.high_error +
                stats.unmapped_as + stats.peers_in_small_ases + stats.final_peers);

  // No NaN reached the conditioned output (the whole point of the door).
  for (const auto& as : dataset.ases()) {
    for (const auto& peer : as.peers) {
      ASSERT_TRUE(geo::is_valid(peer.location));
      ASSERT_TRUE(std::isfinite(peer.geo_error_km));
    }
  }

  // And the streaming path still equals the one-shot path over the same
  // poisoned databases — the rejects are deterministic conditioning, not
  // streaming-only behaviour.
  const core::DatasetBuilder one_shot{poisoned, w.f.secondary, w.f.mapper, w.config};
  const auto reference = one_shot.build(w.deduped, 1);
  expect_same_dataset(reference, dataset, "poisoned database");
  EXPECT_EQ(reference.stats().rejected_samples, stats.rejected_samples);
}

bool same_analysis(const core::AsAnalysis& a, const core::AsAnalysis& b) {
  if (a.asn != b.asn) return false;
  if (a.classification.level != b.classification.level ||
      a.classification.dominant_region != b.classification.dominant_region ||
      a.classification.dominant_share != b.classification.dominant_share) {
    return false;
  }
  if (a.footprint.grid.values() != b.footprint.grid.values()) return false;
  if (a.pops.unmapped_peaks != b.pops.unmapped_peaks) return false;
  if (a.pops.pops.size() != b.pops.pops.size()) return false;
  for (std::size_t i = 0; i < a.pops.pops.size(); ++i) {
    const auto& pa = a.pops.pops[i];
    const auto& pb = b.pops.pops[i];
    if (pa.city != pb.city || pa.score != pb.score ||
        pa.peak_density != pb.peak_density || pa.peak_location != pb.peak_location) {
      return false;
    }
  }
  return true;
}

TEST(StreamingDataset, TouchedAsnsDriveIncrementalReanalysis) {
  const auto& w = stream_world();
  auto streaming = w.streaming();
  // Windows 0..k-1, snapshot, full analysis.
  for (std::size_t i = 0; i + 1 < w.churn.windows.size(); ++i) {
    streaming.ingest(w.churn.windows[i], 2);
  }
  const auto before = streaming.finalize(2);
  const auto analyses_before = w.f.pipeline.analyze_all(before.ases(), 2);

  // Window k arrives: touched_asns() (cleared by the finalize above) names
  // exactly the buckets the new window grew.
  streaming.ingest(w.churn.windows.back(), 2);
  const auto touched = streaming.touched_asns();
  ASSERT_FALSE(touched.empty());
  EXPECT_TRUE(std::is_sorted(touched.begin(), touched.end(),
                             [](net::Asn a, net::Asn b) {
                               return net::value_of(a) < net::value_of(b);
                             }));
  const auto after = streaming.finalize(2);

  // Incremental re-analysis over the touched list equals a full re-run.
  const auto refreshed =
      w.f.pipeline.refresh_analyses(after, analyses_before, touched);
  const auto full = w.f.pipeline.analyze_all(after.ases(), 2);
  ASSERT_EQ(refreshed.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_TRUE(same_analysis(refreshed[i], full[i])) << "as index " << i;
  }
}

}  // namespace
}  // namespace eyeball
