#include <gtest/gtest.h>

#include "bgp/rib.hpp"
#include "gazetteer/gazetteer.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"

namespace eyeball::bgp {
namespace {

struct Fixture {
  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::AsEcosystem eco = [this] {
    topology::EcosystemConfig config;
    config.seed = 21;
    return topology::generate_ecosystem(gaz, config.scaled(0.05));
  }();
  RibSnapshot rib = RibSnapshot::from_ecosystem(eco, 3);
};

const Fixture& fixture() {
  static const Fixture instance;
  return instance;
}

TEST(RibSnapshot, RejectsEmptyPath) {
  std::vector<RibEntry> entries{{*net::Ipv4Prefix::parse("10.0.0.0/8"), {}}};
  EXPECT_THROW(RibSnapshot{std::move(entries)}, std::invalid_argument);
}

TEST(RibSnapshot, OneEntryPerAnnouncedPrefix) {
  const auto& f = fixture();
  std::size_t announced = 0;
  for (const auto& as : f.eco.ases()) {
    for (const auto& pop : as.pops) announced += pop.prefixes.size();
  }
  EXPECT_EQ(f.rib.size(), announced);
}

TEST(RibSnapshot, OriginMatchesGroundTruth) {
  const auto& f = fixture();
  const topology::GroundTruthLocator locator{f.eco, f.gaz};
  int checked = 0;
  for (const auto& as : f.eco.ases()) {
    for (const auto& pop : as.pops) {
      for (const auto& prefix : pop.prefixes) {
        const auto ip = net::Ipv4Address{prefix.address().value() + 3};
        EXPECT_EQ(f.rib.origin(ip), locator.origin(ip));
        EXPECT_EQ(f.rib.origin(ip), as.asn);
        if (++checked > 300) return;
      }
    }
  }
}

TEST(RibSnapshot, UnroutedSpaceHasNoOrigin) {
  EXPECT_FALSE(fixture().rib.origin(net::Ipv4Address{223, 255, 255, 254}));
}

TEST(RibSnapshot, PathsEndAtOrigin) {
  const auto& f = fixture();
  for (const auto& entry : f.rib.entries()) {
    ASSERT_FALSE(entry.as_path.empty());
    // Origin must actually own the prefix.
    const auto& as = f.eco.at(entry.origin());
    bool owns = false;
    for (const auto& pop : as.pops) {
      for (const auto& prefix : pop.prefixes) {
        if (prefix == entry.prefix) owns = true;
      }
    }
    EXPECT_TRUE(owns) << entry.prefix.to_string();
  }
}

TEST(RibSnapshot, PathsHaveNoLoops) {
  const auto& f = fixture();
  for (const auto& entry : f.rib.entries()) {
    std::set<std::uint32_t> seen;
    for (const auto asn : entry.as_path) {
      EXPECT_TRUE(seen.insert(net::value_of(asn)).second)
          << "loop in path for " << entry.prefix.to_string();
    }
  }
}

TEST(RibSnapshot, PathsRespectProviderChains) {
  // Every adjacent pair (a, b) in a path (a closer to collector) must be a
  // known relationship edge: b customer of a, a customer of b, or peers.
  const auto& f = fixture();
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const auto& rel : f.eco.relationships()) {
    edges.emplace(net::value_of(rel.customer), net::value_of(rel.provider));
    edges.emplace(net::value_of(rel.provider), net::value_of(rel.customer));
  }
  std::size_t checked = 0;
  for (const auto& entry : f.rib.entries()) {
    for (std::size_t i = 1; i < entry.as_path.size(); ++i) {
      const auto a = net::value_of(entry.as_path[i - 1]);
      const auto b = net::value_of(entry.as_path[i]);
      EXPECT_TRUE(edges.count({a, b}) > 0)
          << "no relationship between AS" << a << " and AS" << b;
    }
    if (++checked > 500) break;
  }
}

TEST(RibSnapshot, DumpParseRoundTrip) {
  const auto& f = fixture();
  const std::string text = f.rib.dump();
  const auto parsed = RibSnapshot::parse(text);
  ASSERT_EQ(parsed.size(), f.rib.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed.entries()[i].prefix, f.rib.entries()[i].prefix);
    EXPECT_EQ(parsed.entries()[i].as_path, f.rib.entries()[i].as_path);
  }
}

TEST(RibSnapshot, ParseAcceptsBlankLines) {
  const auto rib = RibSnapshot::parse("10.0.0.0/8|1 2 3\n\n11.0.0.0/8|4\n");
  EXPECT_EQ(rib.size(), 2u);
  EXPECT_EQ(rib.origin(net::Ipv4Address{10, 1, 1, 1}), net::Asn{3});
  EXPECT_EQ(rib.origin(net::Ipv4Address{11, 1, 1, 1}), net::Asn{4});
}

TEST(RibSnapshot, ParseRejectsMalformed) {
  EXPECT_THROW((void)RibSnapshot::parse("10.0.0.0/8 1 2 3\n"), std::invalid_argument);
  EXPECT_THROW((void)RibSnapshot::parse("10.0.0.0|1\n"), std::invalid_argument);
  EXPECT_THROW((void)RibSnapshot::parse("10.0.0.0/8|\n"), std::invalid_argument);
  EXPECT_THROW((void)RibSnapshot::parse("10.0.0.0/8|x y\n"), std::invalid_argument);
  EXPECT_THROW((void)RibSnapshot::parse("300.0.0.0/8|1\n"), std::invalid_argument);
}

TEST(RibSnapshot, MoreSpecificWinsAfterParse) {
  const auto rib = RibSnapshot::parse("10.0.0.0/8|1\n10.1.0.0/16|2\n");
  EXPECT_EQ(rib.origin(net::Ipv4Address{10, 1, 2, 3}), net::Asn{2});
  EXPECT_EQ(rib.origin(net::Ipv4Address{10, 2, 2, 3}), net::Asn{1});
}

TEST(IpToAsMapper, DelegatesToRib) {
  const auto& f = fixture();
  const IpToAsMapper mapper{f.rib};
  const auto& as = f.eco.ases()[10];
  ASSERT_FALSE(as.pops.empty());
  const auto ip = as.pops[0].prefixes[0].first();
  EXPECT_EQ(mapper.map(ip), as.asn);
  EXPECT_FALSE(mapper.map(net::Ipv4Address{223, 255, 255, 254}));
}

TEST(RibSnapshot, FromEcosystemDeterministicPerSeed) {
  const auto& f = fixture();
  const auto a = RibSnapshot::from_ecosystem(f.eco, 3);
  const auto b = RibSnapshot::from_ecosystem(f.eco, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].as_path, b.entries()[i].as_path);
  }
}

}  // namespace
}  // namespace eyeball::bgp
