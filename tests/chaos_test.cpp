// The whole-lifecycle chaos storm (this PR's acceptance bar): seeded fault
// schedules drive a full EyeballService lifecycle — ingest, publish,
// supervised snapshot save, artifact emit, crash, restore — through a
// FaultInjectingFileSystem arming a random mix of every fault class the
// repo can inject (short writes, failed fsyncs, silent bit flips, silent
// truncation, ENOSPC, failed renames with and without tmp debris, transient
// open/rename failures, exceptions thrown mid-publish).  The oracle, per
// scenario:
//
//   * zero silent corruptions — a post-crash restore lands bit-for-bit on a
//     state the writer actually had at a publish boundary, never a third
//     thing, and the final restore equals the clean-run reference exactly;
//   * every answer is attributable to exactly one published epoch;
//   * every failure surfaces as a typed util::Status (nothing throws out,
//     nothing is silently dropped) and health() tells the truth about it;
//   * once the faults clear, the service provably returns to Healthy;
//   * the whole schedule — retries, backoffs, outcomes — is a pure function
//     of the seed: identical seeds replay byte-identical FakeClock sleep
//     logs and outcome traces.
//
// Runs as its own `chaos` stage in tools/check.sh (ASan+UBSan build); the
// Chaos.Concurrent* storm additionally runs under the TSan gate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "core/streaming_dataset.hpp"
#include "p2p/churn.hpp"
#include "pipeline_fixture.hpp"
#include "serve/service.hpp"
#include "util/clock.hpp"
#include "util/file.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;
using util::Status;

/// Deterministic root seed; every scenario's schedule derives from it.
constexpr std::uint64_t kChaosSeed = 0xE7EBA11C4A05ULL;

/// Small longitudinal world: three churned windows, truncated so that one
/// scenario (up to six finalize+analyze cycles) costs well under a second —
/// the storm runs a hundred of them.
struct ChaosWorld {
  const testing::PipelineFixture& f = shared_fixture();
  core::PipelineConfig config = [] {
    core::PipelineConfig pipeline_config = shared_fixture().pipeline.config();
    pipeline_config.dataset.min_peers_per_as = 150;
    pipeline_config.threads = 2;
    return pipeline_config;
  }();
  core::EyeballPipeline pipeline{f.gaz, f.primary, f.secondary, f.mapper, config};
  p2p::LongitudinalResult churn = [this] {
    p2p::CrawlerConfig crawl_config;
    crawl_config.seed = 77;
    crawl_config.coverage = 0.05;
    p2p::ChurnConfig churn_config;
    churn_config.seed = 2009;
    churn_config.windows = 3;
    churn_config.lease_survival = 0.6;
    return p2p::longitudinal_crawl(f.eco, f.gaz, crawl_config, churn_config);
  }();
  std::vector<std::span<const p2p::PeerSample>> windows = [this] {
    std::vector<std::span<const p2p::PeerSample>> out;
    for (const auto& window : churn.windows) {
      out.push_back(std::span<const p2p::PeerSample>{window}.first(
          std::min<std::size_t>(window.size(), 700)));
    }
    return out;
  }();
  /// Reference builder states after windows 0..k, finalized — exactly what
  /// a publish at that boundary persists.  The chaos oracle compares every
  /// restored state against these; matching none is a silent corruption.
  std::vector<std::vector<std::byte>> ref_states = [this] {
    std::vector<std::vector<std::byte>> out;
    auto reference = pipeline.streaming_builder();
    for (const auto& window : windows) {
      reference.ingest(window);
      (void)reference.finalize(2);
      out.push_back(core::SnapshotCodec::encode(reference, 0));
    }
    return out;
  }();
};

const ChaosWorld& chaos_world() {
  static const ChaosWorld instance;
  return instance;
}

[[nodiscard]] std::vector<std::byte> state_bytes(
    const core::StreamingDatasetBuilder& builder) {
  return core::SnapshotCodec::encode(builder, 0);
}

[[nodiscard]] serve::ServiceConfig two_threads() {
  serve::ServiceConfig config;
  config.threads = 2;
  return config;
}

[[nodiscard]] std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "eyeball_chaos_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Everything a scenario's schedule produced, for the reproducibility
/// differential: identical seeds must yield identical records.
struct ScenarioRecord {
  /// The FakeClock sleep log — the retry/backoff schedule, byte-comparable.
  std::vector<std::chrono::nanoseconds> sleeps;
  /// Compact outcome trace: per publish P/F + retry counts + health, plus
  /// probe/final restore outcomes.
  std::string trace;
};

/// Draws one fault action from the scenario rng and arms it.  Returns a
/// trace tag.  `throw_armed` is the publish-firewall trigger.
[[nodiscard]] std::string arm_random_fault(util::Rng& rng,
                                           util::FaultInjectingFileSystem& fs,
                                           std::size_t probe_size,
                                           bool& throw_armed) {
  switch (rng.uniform_index(8)) {
    case 0: {
      util::FileFault fault;
      const util::FileFault::Kind kinds[] = {
          util::FileFault::Kind::kShortWrite, util::FileFault::Kind::kFailedSync,
          util::FileFault::Kind::kBitFlip, util::FileFault::Kind::kTruncate,
          util::FileFault::Kind::kNoSpace,
      };
      fault.kind = kinds[rng.uniform_index(5)];
      fault.offset = rng.uniform_index(probe_size + probe_size / 4 + 1);
      fault.bit = static_cast<std::uint32_t>(rng.uniform_index(8));
      fs.arm(fault);
      return std::string{util::to_string(fault.kind)} + "@" +
             std::to_string(fault.offset);
    }
    case 1:
      fs.fail_next_rename();
      return "rename";
    case 2:
      fs.fail_next_rename_leaving_tmp();
      return "rename+tmp";
    case 3: {
      const std::size_t count = 1 + rng.uniform_index(4);
      fs.arm_transient_open_failures(count);
      return "open*" + std::to_string(count);
    }
    case 4: {
      const std::size_t count = 1 + rng.uniform_index(4);
      fs.arm_transient_rename_failures(count);
      return "rename*" + std::to_string(count);
    }
    case 5:
      throw_armed = true;
      return "throw";
    default:
      return "calm";  // cases 6,7: publish under clear skies
  }
}

/// One full lifecycle under a seeded fault schedule.  Returns the number of
/// silent-corruption outcomes observed (the storm sums these and demands
/// zero); typed-status, attribution and health violations are reported as
/// test failures inline.
[[nodiscard]] std::size_t run_chaos_scenario(const ChaosWorld& w, std::uint64_t seed,
                                             const std::string& dir_name,
                                             ScenarioRecord* record) {
  util::Rng rng{seed};
  const std::string dir = scratch_dir(dir_name);
  const std::string artifact_path = dir + ".artifact.eyb";
  std::filesystem::remove(artifact_path);
  const std::string label = "seed " + std::to_string(seed);
  std::size_t silent = 0;
  std::string trace;

  util::FaultInjectingFileSystem faulty{util::local_filesystem()};
  util::FakeClock clock;
  bool throw_armed = false;

  serve::ServiceConfig config;
  config.threads = 2;
  config.snapshot_dir = dir;
  const bool with_artifact = rng.bernoulli(0.5);
  if (with_artifact) config.artifact_path = artifact_path;
  config.filesystem = &faulty;
  config.clock = &clock;
  config.publish_fault_hook = [&throw_armed] {
    if (throw_armed) throw std::runtime_error("chaos: injected publish fault");
  };
  serve::EyeballService service{w.pipeline, config};

  const std::size_t probe_size = w.ref_states.back().size();
  std::uint64_t epoch_before = 0;
  for (std::size_t i = 0; i < w.windows.size(); ++i) {
    service.ingest(w.windows[i]);
    trace += "[" + arm_random_fault(rng, faulty, probe_size, throw_armed) + "]";

    const auto snap = service.publish();
    throw_armed = false;
    if (snap == nullptr) {
      // Firewall trip: typed verdict, read-only health, previous epoch
      // (possibly none) untouched.
      trace += "F";
      EXPECT_FALSE(service.last_publish_status().ok()) << label;
      EXPECT_EQ(service.health().state, serve::ServiceHealth::kReadOnly) << label;
      EXPECT_EQ(service.epoch(), epoch_before) << label;
      continue;
    }
    // Published: the epoch advanced by exactly one and every answer is
    // attributable to it.
    trace += "P";
    EXPECT_EQ(snap->epoch(), epoch_before + 1) << label;
    EXPECT_EQ(service.epoch(), snap->epoch()) << label;
    epoch_before = snap->epoch();
    EXPECT_EQ(snap->analyses().size(), snap->as_count()) << label;
    if (snap->as_count() > 0) {
      const auto answer = service.query(snap->asn_at(0));
      EXPECT_EQ(answer.epoch(), snap->epoch()) << label;
      EXPECT_NE(answer.analysis, nullptr) << label;
    }
    // Durability verdicts are typed and health reflects them exactly.
    const bool durable = service.last_save_status().ok() &&
                         service.last_artifact_status().ok();
    trace += std::to_string(service.last_save_retry().attempts_made());
    trace += service.last_save_status().ok() ? 's' : 'S';
    if (with_artifact) {
      trace += std::to_string(service.last_artifact_retry().attempts_made());
      trace += service.last_artifact_status().ok() ? 'a' : 'A';
    }
    EXPECT_EQ(service.health().state,
              durable ? serve::ServiceHealth::kHealthy
                      : serve::ServiceHealth::kDegradedDurability)
        << label;

    // Mid-run crash probe: a cold replica restores from whatever the storm
    // left in the directory, against a CLEAN filesystem.  It must land on a
    // state the writer actually had — or refuse, typed, touching nothing.
    if (i + 1 < w.windows.size() && rng.bernoulli(0.3)) {
      serve::EyeballService probe{w.pipeline, two_threads()};
      core::SnapshotRestoreInfo info;
      if (const Status status = probe.restore(dir, &info); status.ok()) {
        const auto got = state_bytes(probe.builder());
        bool matched = false;
        for (std::size_t k = 0; k <= i; ++k) matched |= (got == w.ref_states[k]);
        if (!matched) {
          ADD_FAILURE() << label << ": mid-run restore (generation "
                        << info.generation
                        << ") matches NO writer state — silent corruption";
          ++silent;
        }
        trace += "r" + std::to_string(info.generation);
        EXPECT_NE(probe.snapshot(), nullptr) << label;
        EXPECT_EQ(probe.health().state, serve::ServiceHealth::kHealthy) << label;
      } else {
        // Typed refusal, replica untouched.
        EXPECT_NE(status.code(), util::StatusCode::kOk) << label;
        EXPECT_EQ(probe.snapshot(), nullptr) << label;
        trace += "rx";
      }
    }
  }

  // The storm passes: with faults cleared, one publish must restore full
  // health — including a successful save over whatever debris (stale tmp,
  // quarantined corpses) the storm left in the directory.
  faulty.disarm_all();
  const auto calm = service.publish();
  if (calm == nullptr) {
    ADD_FAILURE() << label << ": publish still failing after faults cleared: "
                  << service.last_publish_status();
    return silent + 1;
  }
  trace += "|C";
  EXPECT_TRUE(service.last_save_status().ok())
      << label << ": " << service.last_save_status();
  if (with_artifact) {
    EXPECT_TRUE(service.last_artifact_status().ok())
        << label << ": " << service.last_artifact_status();
  }
  EXPECT_EQ(service.health().state, serve::ServiceHealth::kHealthy) << label;

  // Crash for real.  A cold replica must come back with EXACTLY the final
  // clean-run state — the zero-silent-corruption acceptance criterion.
  serve::EyeballService replica{w.pipeline, two_threads()};
  core::SnapshotRestoreInfo info;
  if (const Status status = replica.restore(dir, &info); !status.ok()) {
    ADD_FAILURE() << label << ": final restore refused: " << status;
    return silent + 1;
  }
  if (state_bytes(replica.builder()) != w.ref_states.back()) {
    ADD_FAILURE() << label << ": final restored state differs from the "
                     "clean-run reference — silent corruption";
    ++silent;
  }
  trace += "R" + std::to_string(info.generation);
  const auto served = replica.snapshot();
  EXPECT_NE(served, nullptr) << label;
  if (served != nullptr) {
    EXPECT_EQ(served->epoch(), 1u) << label;
    if (served->as_count() > 0) {
      const auto answer = replica.query(served->asn_at(0));
      EXPECT_EQ(answer.epoch(), served->epoch()) << label;
    }
  }
  EXPECT_EQ(replica.health().state, serve::ServiceHealth::kHealthy) << label;

  // When the artifact survived the storm, a second replica serves from it.
  if (with_artifact && service.last_artifact_status().ok()) {
    serve::EyeballService mirror{w.pipeline, two_threads()};
    const Status status = mirror.restore_from_artifact(artifact_path);
    EXPECT_TRUE(status.ok()) << label << ": " << status;
    if (status.ok() && calm->as_count() > 0) {
      const auto snap = mirror.snapshot();
      EXPECT_NE(snap, nullptr) << label;
      if (snap != nullptr) {
        EXPECT_EQ(snap->as_count(), calm->as_count()) << label;
        EXPECT_NE(snap->find(calm->asn_at(0)), nullptr) << label;
      }
    }
    trace += "M";
  }

  if (record != nullptr) {
    record->sleeps = clock.sleeps();
    record->trace = trace;
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove(artifact_path);
  return silent;
}

TEST(Chaos, StormOfSeededFaultSchedulesNeverCorruptsSilently) {
  const auto& w = chaos_world();
  // The world must be non-trivial, or the oracle proves nothing.
  ASSERT_GT(w.ref_states.back().size(), 64u);

  constexpr std::size_t kScenarios = 100;
  std::size_t silent_corruptions = 0;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const std::uint64_t seed = kChaosSeed ^ (i * 0x9E3779B97F4A7C15ULL);
    silent_corruptions +=
        run_chaos_scenario(w, seed, "storm_" + std::to_string(i), nullptr);
    if (HasFatalFailure()) break;
  }
  // The acceptance criterion, stated as a number.
  EXPECT_EQ(silent_corruptions, 0u);
}

TEST(Chaos, IdenticalSeedsReplayIdenticalSchedulesAndOutcomes) {
  const auto& w = chaos_world();
  // The retry/backoff schedule and the whole outcome trace must be a pure
  // function of the seed: replay three seeds twice and compare the records
  // byte-for-byte.  (A FakeClock sleep log difference means backoff depends
  // on something other than the injected faults; a trace difference means
  // an outcome does.)
  for (std::uint64_t seed : {kChaosSeed + 1, kChaosSeed + 2, kChaosSeed + 3}) {
    ScenarioRecord first;
    ScenarioRecord second;
    EXPECT_EQ(run_chaos_scenario(w, seed, "replay_a", &first), 0u);
    EXPECT_EQ(run_chaos_scenario(w, seed, "replay_b", &second), 0u);
    EXPECT_EQ(first.sleeps, second.sleeps) << "seed " << seed;
    EXPECT_EQ(first.trace, second.trace) << "seed " << seed;
    EXPECT_FALSE(second.trace.empty()) << "seed " << seed;
  }
}

// ---- The TSan slice: readers polling health and epochs through a storm ----

TEST(Chaos, ConcurrentReadersStayAttributableThroughAFaultStorm) {
  const auto& w = chaos_world();
  const std::string dir = scratch_dir("concurrent");

  util::FaultInjectingFileSystem faulty{util::local_filesystem()};
  util::FakeClock clock;
  serve::ServiceConfig config;
  config.threads = 2;
  config.snapshot_dir = dir;
  config.filesystem = &faulty;
  config.clock = &clock;
  serve::EyeballService service{w.pipeline, config};

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> answered{0};

  // Readers race the writer's publishes AND its health transitions: every
  // observation must be internally consistent and epochs must only move
  // forward.  Under TSan this also proves HealthTracker and FakeClock are
  // soundly synchronized against the retrying writer.
  const auto reader = [&] {
    std::uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = service.snapshot();
      if (snap != nullptr) {
        if (snap->epoch() < last_epoch) ++violations;
        last_epoch = snap->epoch();
        if (snap->analyses().size() != snap->as_count()) ++violations;
        if (snap->as_count() > 0 &&
            snap->find(snap->asn_at(0)) != snap->analysis_at(0)) {
          ++violations;
        }
        ++answered;
      }
      const auto report = service.health();
      if (to_string(report.state).empty()) ++violations;
      if (report.state != serve::ServiceHealth::kHealthy &&
          report.last_error.ok()) {
        ++violations;  // a degraded state must carry its reason
      }
      std::this_thread::yield();
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) readers.emplace_back(reader);

  // The writer storms: every publish runs its supervised save into armed
  // transient failures (some exhausting the retry budget, some recovering).
  util::Rng rng{kChaosSeed ^ 0xC0C0ULL};
  for (const auto& window : w.windows) {
    service.ingest(window);
    faulty.arm_transient_open_failures(rng.uniform_index(4));
    (void)service.publish();
  }
  faulty.disarm_all();
  (void)service.publish();

  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(service.health().state, serve::ServiceHealth::kHealthy);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eyeball
