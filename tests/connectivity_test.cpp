#include <gtest/gtest.h>

#include <algorithm>

#include "connectivity/as_graph.hpp"
#include "util/rng.hpp"
#include "connectivity/case_study.hpp"
#include "connectivity/rai_scenario.hpp"
#include "connectivity/traceroute.hpp"
#include "gazetteer/gazetteer.hpp"
#include "pipeline_fixture.hpp"

namespace eyeball::connectivity {
namespace {

const gazetteer::Gazetteer& gaz() {
  static const auto instance = gazetteer::Gazetteer::builtin();
  return instance;
}

const RaiScenario& scenario() {
  static const RaiScenario instance = build_rai_scenario(gaz());
  return instance;
}

// ---- AsGraph on the hand-built scenario ----

TEST(AsGraph, NeighbourQueries) {
  const AsGraph graph{scenario().ecosystem};
  const auto providers = graph.providers(scenario().rai);
  EXPECT_EQ(providers.size(), 5u);
  const auto peers = graph.peers(scenario().rai);
  EXPECT_EQ(peers.size(), 3u);
  EXPECT_TRUE(graph.customers(scenario().rai).empty());
  EXPECT_THROW((void)graph.providers(net::Asn{424242}), std::out_of_range);
}

TEST(AsGraph, CustomerConeSizes) {
  const AsGraph graph{scenario().ecosystem};
  // RAI has no customers: cone of 1.
  EXPECT_EQ(graph.customer_cone_size(scenario().rai), 1u);
  // Infostrada's cone contains RAI.
  EXPECT_GE(graph.customer_cone_size(scenario().infostrada), 2u);
  // A tier-1 sees a large cone.
  EXPECT_GT(graph.customer_cone_size(scenario().tier1_a), 4u);
}

TEST(AsGraph, SelfRouteIsTrivial) {
  const AsGraph graph{scenario().ecosystem};
  const auto route = graph.best_route(scenario().rai, scenario().rai);
  ASSERT_TRUE(route);
  EXPECT_EQ(route->path.size(), 1u);
}

TEST(AsGraph, DirectProviderRoute) {
  const AsGraph graph{scenario().ecosystem};
  const auto route = graph.best_route(scenario().rai, scenario().infostrada);
  ASSERT_TRUE(route);
  EXPECT_EQ(route->route_class, RouteClass::kProvider);
  ASSERT_EQ(route->path.size(), 2u);
  EXPECT_EQ(route->path[0], scenario().rai);
  EXPECT_EQ(route->path[1], scenario().infostrada);
}

TEST(AsGraph, PeerRoutePreferredOverProviderDetour) {
  const AsGraph graph{scenario().ecosystem};
  // RAI -> GARR: direct peering at MIX beats any transit path.
  const auto route = graph.best_route(scenario().rai, scenario().garr);
  ASSERT_TRUE(route);
  EXPECT_EQ(route->route_class, RouteClass::kPeer);
  ASSERT_EQ(route->path.size(), 2u);
  EXPECT_EQ(route->path[1], scenario().garr);
}

TEST(AsGraph, CustomerRoutePreferred) {
  const AsGraph graph{scenario().ecosystem};
  // Infostrada -> RAI: RAI is a direct customer.
  const auto route = graph.best_route(scenario().infostrada, scenario().rai);
  ASSERT_TRUE(route);
  EXPECT_EQ(route->route_class, RouteClass::kCustomer);
  EXPECT_EQ(route->path.size(), 2u);
}

TEST(AsGraph, ValleyFreePathsOnly) {
  // vantage (DE) -> RAI must go up through tier-1, then down: no route may
  // traverse customer -> provider after a down/peer step.
  const AsGraph graph{scenario().ecosystem};
  const auto route = graph.best_route(scenario().vantage, scenario().rai);
  ASSERT_TRUE(route);
  ASSERT_GE(route->path.size(), 3u);
  EXPECT_EQ(route->path.front(), scenario().vantage);
  EXPECT_EQ(route->path.back(), scenario().rai);

  // Verify valley-freeness structurally: classify each hop and check the
  // up* peer? down* shape.
  const auto& eco = scenario().ecosystem;
  enum Phase { kUp, kPeered, kDown } phase = kUp;
  for (std::size_t i = 1; i < route->path.size(); ++i) {
    const auto from = route->path[i - 1];
    const auto to = route->path[i];
    const auto providers = eco.providers_of(from);
    const auto customers = eco.customers_of(from);
    const auto peers = eco.peers_of(from);
    const bool up = std::find(providers.begin(), providers.end(), to) != providers.end();
    const bool down = std::find(customers.begin(), customers.end(), to) != customers.end();
    const bool peer = std::find(peers.begin(), peers.end(), to) != peers.end();
    ASSERT_TRUE(up || down || peer);
    if (up) {
      EXPECT_EQ(phase, kUp) << "valley at hop " << i;
    } else if (peer) {
      EXPECT_EQ(phase, kUp) << "second peer hop at " << i;
      phase = kPeered;
    } else {
      phase = kDown;
    }
  }
}

TEST(AsGraph, UnreachableWithoutRelationships) {
  topology::AutonomousSystem a;
  a.asn = net::Asn{1};
  topology::AutonomousSystem b;
  b.asn = net::Asn{2};
  const topology::AsEcosystem eco{{a, b}, {}, {}};
  const AsGraph graph{eco};
  EXPECT_FALSE(graph.best_route(net::Asn{1}, net::Asn{2}));
  EXPECT_FALSE(graph.reachable(net::Asn{1}, net::Asn{2}));
}

TEST(AsGraph, GeneratedEcosystemFullyConnected) {
  const auto& f = eyeball::testing::shared_fixture();
  const AsGraph graph{f.eco};
  // Sample random pairs: the generator guarantees provider chains to
  // tier-1s, so everything should be mutually reachable.
  const auto all = graph.all_ases();
  util::Rng rng{4};
  for (int i = 0; i < 40; ++i) {
    const auto src = all[rng.uniform_index(all.size())];
    const auto dst = all[rng.uniform_index(all.size())];
    EXPECT_TRUE(graph.reachable(src, dst))
        << net::to_string(src) << " -> " << net::to_string(dst);
  }
}

TEST(AsGraph, RouteClassPreferenceOrder) {
  // Customer routes must beat peer routes even when longer by a hop.
  topology::AutonomousSystem nodes[4];
  for (int i = 0; i < 4; ++i) nodes[i].asn = net::Asn{static_cast<std::uint32_t>(i + 1)};
  using RT = topology::RelationshipType;
  // 1 has customer 2; 2 has customer 4.  1 peers with 3; 3 has customer 4.
  std::vector<topology::AsRelationship> rels{
      {net::Asn{2}, net::Asn{1}, RT::kCustomerProvider, {}},
      {net::Asn{4}, net::Asn{2}, RT::kCustomerProvider, {}},
      {net::Asn{1}, net::Asn{3}, RT::kPeerPeer, {}},
      {net::Asn{4}, net::Asn{3}, RT::kCustomerProvider, {}},
  };
  const topology::AsEcosystem eco{{nodes[0], nodes[1], nodes[2], nodes[3]}, {}, rels};
  const AsGraph graph{eco};
  const auto route = graph.best_route(net::Asn{1}, net::Asn{4});
  ASSERT_TRUE(route);
  EXPECT_EQ(route->route_class, RouteClass::kCustomer);
  ASSERT_EQ(route->path.size(), 3u);
  EXPECT_EQ(route->path[1], net::Asn{2});
}

// ---- Traceroute ----

TEST(Traceroute, ResolvesTargetIpToOriginAs) {
  const auto& s = scenario();
  const bgp::RibSnapshot rib = bgp::RibSnapshot::from_ecosystem(s.ecosystem, 1);
  const AsGraph graph{s.ecosystem};
  const TracerouteSimulator sim{graph, rib};

  const auto& rai = s.ecosystem.at(s.rai);
  const auto target = rai.pops[0].prefixes[0].first();
  const auto result = sim.trace(s.vantage, target);
  ASSERT_TRUE(result);
  EXPECT_EQ(result->origin, s.rai);
  EXPECT_EQ(result->route.path.back(), s.rai);
  // The penultimate hop must be one of RAI's five providers or peers.
  const auto penultimate = result->route.path[result->route.path.size() - 2];
  const auto providers = s.ecosystem.providers_of(s.rai);
  EXPECT_NE(std::find(providers.begin(), providers.end(), penultimate), providers.end());
}

TEST(Traceroute, UnroutedTargetFails) {
  const auto& s = scenario();
  const bgp::RibSnapshot rib = bgp::RibSnapshot::from_ecosystem(s.ecosystem, 1);
  const AsGraph graph{s.ecosystem};
  const TracerouteSimulator sim{graph, rib};
  EXPECT_FALSE(sim.trace(s.vantage, net::Ipv4Address{223, 255, 255, 254}));
}

TEST(Traceroute, FormatPath) {
  Route route;
  route.path = {net::Asn{3320}, net::Asn{1239}, net::Asn{8234}};
  EXPECT_EQ(TracerouteSimulator::format_path(route), "AS3320 AS1239 AS8234");
}

// ---- RAI scenario integrity (paper §6 facts) ----

TEST(RaiScenario, FiveUpstreamsWithExpectedMix) {
  const auto& s = scenario();
  const auto providers = s.ecosystem.providers_of(s.rai);
  ASSERT_EQ(providers.size(), 5u);
  int global = 0;
  for (const auto provider : providers) {
    if (s.ecosystem.at(provider).level == topology::AsLevel::kGlobal) ++global;
  }
  EXPECT_EQ(global, 2);  // Easynet and Colt
}

TEST(RaiScenario, RaiAtMixNotNamex) {
  const auto& s = scenario();
  EXPECT_TRUE(s.ecosystem.ixps()[s.mix_index].has_member(s.rai));
  EXPECT_FALSE(s.ecosystem.ixps()[s.namex_index].has_member(s.rai));
  EXPECT_EQ(s.ecosystem.ixps()[s.mix_index].name, "MIX");
  EXPECT_EQ(s.ecosystem.ixps()[s.namex_index].name, "NaMEX");
}

TEST(RaiScenario, PeersAtMixMatchPaper) {
  const auto& s = scenario();
  const auto peers = s.ecosystem.peers_of(s.rai);
  ASSERT_EQ(peers.size(), 3u);
  for (const auto peer : peers) {
    EXPECT_TRUE(peer == s.garr || peer == s.asdasd || peer == s.itgate);
  }
  // GARR is also at NaMEX; ASDASD and ITGate are not.
  EXPECT_TRUE(s.ecosystem.ixps()[s.namex_index].has_member(s.garr));
  EXPECT_FALSE(s.ecosystem.ixps()[s.namex_index].has_member(s.asdasd));
  EXPECT_FALSE(s.ecosystem.ixps()[s.namex_index].has_member(s.itgate));
}

TEST(RaiScenario, RaiIsRomeOnlyCityLevel) {
  const auto& s = scenario();
  const auto& rai = s.ecosystem.at(s.rai);
  EXPECT_EQ(rai.level, topology::AsLevel::kCity);
  EXPECT_EQ(rai.customers, RaiScenario::kRaiUsers);
  ASSERT_EQ(rai.service_pop_count(), 1u);
  EXPECT_EQ(gaz().city(rai.pops[0].city).name, "Rome");
}

// ---- Case-study analyzer ----

TEST(CaseStudy, RaiReportMatchesPaperNarrative) {
  const auto& s = scenario();
  const auto report = analyze_connectivity(s.ecosystem, gaz(), s.rai);
  EXPECT_EQ(report.name, "RAI");
  EXPECT_EQ(report.level, topology::AsLevel::kCity);
  EXPECT_EQ(gaz().city(report.home_city).name, "Rome");
  EXPECT_EQ(report.upstreams.size(), 5u);
  ASSERT_EQ(report.memberships.size(), 1u);
  EXPECT_EQ(report.memberships[0].name, "MIX");
  EXPECT_FALSE(report.memberships[0].local);  // Milan is ~480 km from Rome
  EXPECT_EQ(report.memberships[0].peers_there.size(), 3u);
  // NaMEX is the skipped local IXP.
  ASSERT_EQ(report.skipped_local_ixps.size(), 1u);
  EXPECT_EQ(report.skipped_local_ixps[0], "NaMEX");
}

TEST(CaseStudy, RaiSurprisesIncludeAllFourFindings) {
  const auto& s = scenario();
  const auto report = analyze_connectivity(s.ecosystem, gaz(), s.rai);
  // Rich upstreams, global providers, remote peering, skipped local IXP.
  EXPECT_EQ(report.surprises.size(), 4u);
}

TEST(CaseStudy, WellBehavedAsHasNoSurprises) {
  const auto& s = scenario();
  // Infostrada: country-level, 1 provider, local peering at MIX (Milan PoP).
  const auto report = analyze_connectivity(s.ecosystem, gaz(), s.infostrada);
  EXPECT_TRUE(report.surprises.empty()) << report.surprises.front();
}

TEST(CaseStudy, WorksOnGeneratedEcosystem) {
  const auto& f = eyeball::testing::shared_fixture();
  const auto eyeballs = f.eco.eyeballs();
  std::size_t with_surprises = 0;
  for (const auto asn : eyeballs) {
    const auto report = analyze_connectivity(f.eco, f.gaz, asn);
    EXPECT_EQ(report.asn, asn);
    EXPECT_FALSE(report.upstreams.empty());
    if (!report.surprises.empty()) ++with_surprises;
  }
  // The generator's multi-homing and remote peering must make the paper's
  // point: a nontrivial share of eyeballs have "surprising" connectivity.
  EXPECT_GT(with_surprises, eyeballs.size() / 10);
}

}  // namespace
}  // namespace eyeball::connectivity
