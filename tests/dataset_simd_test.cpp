// Differential tests for the SoA conditioning rewrite (PR 7): the batched
// LookupMemo path and the block-arena condition stage must be byte-identical
// to their scalar ancestors — results, per-AS peer order, stats, AND memo
// counters (see DESIGN.md "Data layout & vectorization").
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/dataset.hpp"
#include "geodb/lookup_memo.hpp"
#include "geodb/synthetic_db.hpp"
#include "pipeline_fixture.hpp"
#include "util/rng.hpp"

namespace eyeball {
namespace {

/// Allocated eyeball IPs from the shared fixture's ecosystem (repetition
/// comes from the callers re-drawing with a seeded Rng).
std::vector<net::Ipv4Address> allocated_ips(std::size_t want) {
  const auto& f = testing::shared_fixture();
  std::vector<net::Ipv4Address> out;
  for (const auto& as : f.eco.ases()) {
    if (as.role != topology::AsRole::kEyeball) continue;
    for (const auto& pop : as.pops) {
      for (const auto& prefix : pop.prefixes) {
        const auto step = std::max<std::uint64_t>(1, prefix.size() / 16);
        for (std::uint64_t off = 0; off < prefix.size(); off += step) {
          out.push_back(net::Ipv4Address{
              static_cast<std::uint32_t>(prefix.address().value() + off)});
          if (out.size() >= want) return out;
        }
      }
    }
  }
  return out;
}

/// Draws a batch with heavy repetition (memo hits + intra-batch aliases)
/// and a sprinkle of unallocated IPs (database misses -> nullopt records).
std::vector<net::Ipv4Address> random_batch(util::Rng& rng,
                                           std::span<const net::Ipv4Address> pool,
                                           std::size_t count) {
  std::vector<net::Ipv4Address> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.bernoulli(0.05)) {
      // TEST-NET-3 style address no synthetic prefix covers.
      out.push_back(net::Ipv4Address{
          0xCB007100u + static_cast<std::uint32_t>(rng.uniform_index(64))});
    } else if (!out.empty() && rng.bernoulli(0.25)) {
      out.push_back(out[rng.uniform_index(out.size())]);  // intra-batch alias
    } else {
      out.push_back(pool[rng.uniform_index(pool.size())]);
    }
  }
  return out;
}

void expect_batch_matches_scalar(std::size_t memo_slots, std::uint64_t seed) {
  const auto& f = testing::shared_fixture();
  geodb::LookupMemo batched{f.primary, memo_slots};
  geodb::LookupMemo scalar{f.primary, memo_slots};
  const auto pool = allocated_ips(500);
  ASSERT_FALSE(pool.empty());
  util::Rng rng{seed};
  for (int round = 0; round < 12; ++round) {
    const auto batch =
        random_batch(rng, pool, static_cast<std::size_t>(rng.uniform_int(1, 120)));
    std::vector<std::optional<geodb::GeoRecord>> got(batch.size());
    batched.lookup_batch(batch, got);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto want = scalar.lookup(batch[i]);
      ASSERT_EQ(got[i].has_value(), want.has_value())
          << "slots=" << memo_slots << " round " << round << " ip "
          << batch[i].to_string();
      if (want) {
        EXPECT_EQ(got[i]->city, want->city);
        EXPECT_EQ(got[i]->city_id, want->city_id);
        EXPECT_EQ(got[i]->location, want->location);
      }
    }
    // The batched path promises the scalar loop's exact counters too.
    ASSERT_EQ(batched.hits(), scalar.hits()) << "slots=" << memo_slots;
    ASSERT_EQ(batched.misses(), scalar.misses()) << "slots=" << memo_slots;
  }
}

TEST(LookupMemoBatch, MatchesScalarLoopAcrossMemoSizes) {
  // 8 slots: constant eviction pressure; 1024: mostly hits after warm-up;
  // 0: memo disabled, the batch forwards straight to the database.
  expect_batch_matches_scalar(8, 101);
  expect_batch_matches_scalar(1024, 102);
  expect_batch_matches_scalar(0, 103);
}

TEST(LookupMemoBatch, AllMissFastPathFillsMemoExactly) {
  const auto& f = testing::shared_fixture();
  geodb::LookupMemo memo{f.primary, 4096};
  auto ips = allocated_ips(256);
  ips.push_back(net::Ipv4Address{203, 0, 113, 9});  // unallocated miss
  std::vector<std::optional<geodb::GeoRecord>> first(ips.size());
  memo.lookup_batch(ips, first);  // fresh memo, distinct IPs: all-miss path
  EXPECT_EQ(memo.misses(), ips.size());
  for (std::size_t i = 0; i < ips.size(); ++i) {
    const auto direct = f.primary.lookup(ips[i]);
    ASSERT_EQ(first[i].has_value(), direct.has_value()) << i;
    if (direct) {
      EXPECT_EQ(first[i]->location, direct->location);
    }
  }
  // Replay against a scalar twin driven through the same two passes: the
  // fast path must leave the exact slot state the serial loop would (slot
  // collisions may evict — 257 IPs in 4096 slots collide a handful of
  // times — so the pin is twin equality, not zero second-pass misses).
  geodb::LookupMemo twin{f.primary, 4096};
  for (int round = 0; round < 2; ++round) {
    for (const auto ip : ips) (void)twin.lookup(ip);
  }
  std::vector<std::optional<geodb::GeoRecord>> second(ips.size());
  memo.lookup_batch(ips, second);
  EXPECT_EQ(memo.misses(), twin.misses());
  EXPECT_EQ(memo.hits(), twin.hits());
  EXPECT_GT(memo.hits(), 0u);
  for (std::size_t i = 0; i < ips.size(); ++i) {
    ASSERT_EQ(second[i].has_value(), first[i].has_value()) << i;
    if (first[i]) {
      EXPECT_EQ(second[i]->location, first[i]->location);
    }
  }
}

void expect_same_dataset(const core::TargetDataset& reference,
                         const core::TargetDataset& candidate) {
  ASSERT_EQ(reference.stats(), candidate.stats())
      << core::diff_stats(reference.stats(), candidate.stats());
  ASSERT_EQ(reference.ases().size(), candidate.ases().size());
  for (std::size_t a = 0; a < reference.ases().size(); ++a) {
    const auto& ra = reference.ases()[a];
    const auto& ca = candidate.ases()[a];
    ASSERT_EQ(ra.asn, ca.asn) << "as index " << a;
    ASSERT_EQ(ra.peers.size(), ca.peers.size()) << "as index " << a;
    for (std::size_t p = 0; p < ra.peers.size(); ++p) {
      const auto& rp = ra.peers[p];
      const auto& cp = ca.peers[p];
      ASSERT_TRUE(rp.ip == cp.ip && rp.app == cp.app && rp.location == cp.location &&
                  rp.geo_error_km == cp.geo_error_km &&
                  rp.reported_city == cp.reported_city)
          << "as index " << a << " peer " << p;
    }
  }
}

// The arena path processes each shard in fixed 4096-sample blocks (see
// core::detail::kConditionBlock in dataset.cpp); sample counts straddling a
// block boundary exercise the partial final block against full-block runs.
TEST(ConditionArena, BlockBoundarySubspansStayByteIdentical) {
  const auto& f = testing::shared_fixture();
  const auto samples = std::span<const p2p::PeerSample>{f.crawl.samples};
  constexpr std::size_t kBlock = 4096;
  for (const std::size_t n :
       {std::size_t{1}, kBlock - 1, kBlock, kBlock + 1, 3 * kBlock + 17}) {
    if (n > samples.size()) break;
    const auto sub = samples.first(n);
    const auto reference = f.pipeline.build_dataset(sub, 1);
    for (const std::size_t threads : {2u, 0u}) {
      expect_same_dataset(reference, f.pipeline.build_dataset(sub, threads));
    }
  }
}

TEST(ConditionArena, MemoSizeInvisibleToConditionedDataset) {
  const auto& f = testing::shared_fixture();
  // 0 slots drives the arena's direct GeoDatabase::lookup_batch path; a
  // tiny memo maximizes eviction churn inside the batched probe loop.
  for (const std::size_t slots : {std::size_t{0}, std::size_t{8}}) {
    core::DatasetConfig config = f.pipeline.config().dataset;
    config.lookup_memo_slots = slots;
    const core::DatasetBuilder builder{f.primary, f.secondary, f.mapper, config};
    expect_same_dataset(f.dataset, builder.build(f.crawl.samples, 2));
  }
}

}  // namespace
}  // namespace eyeball
