#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geo/point.hpp"

namespace eyeball::geo {
namespace {

constexpr GeoPoint kRome{41.9028, 12.4964};
constexpr GeoPoint kMilan{45.4642, 9.1900};
constexpr GeoPoint kNewYork{40.7128, -74.0060};
constexpr GeoPoint kLondon{51.5074, -0.1278};

TEST(GeoPoint, Validity) {
  EXPECT_TRUE(is_valid({0, 0}));
  EXPECT_TRUE(is_valid({-90, -180}));
  EXPECT_FALSE(is_valid({90.1, 0}));
  EXPECT_FALSE(is_valid({0, 180.0}));
  EXPECT_FALSE(is_valid({0, 181}));
  EXPECT_FALSE(is_valid({std::nan(""), 0}));
}

TEST(GeoPoint, NormalizeWrapsLongitude) {
  EXPECT_NEAR(normalized({0, 190}).lon_deg, -170, 1e-9);
  EXPECT_NEAR(normalized({0, -190}).lon_deg, 170, 1e-9);
  EXPECT_NEAR(normalized({0, 360}).lon_deg, 0, 1e-9);
  EXPECT_NEAR(normalized({95, 0}).lat_deg, 90, 1e-9);
}

TEST(Distance, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(distance_km(kRome, kRome), 0.0);
}

TEST(Distance, SymmetricAndPositive) {
  EXPECT_NEAR(distance_km(kRome, kMilan), distance_km(kMilan, kRome), 1e-9);
  EXPECT_GT(distance_km(kRome, kMilan), 0.0);
}

TEST(Distance, KnownCityPairs) {
  // Rome-Milan ~477 km, London-New York ~5570 km.
  EXPECT_NEAR(distance_km(kRome, kMilan), 477.0, 10.0);
  EXPECT_NEAR(distance_km(kLondon, kNewYork), 5570.0, 60.0);
}

TEST(Distance, OneDegreeOfLatitude) {
  EXPECT_NEAR(distance_km({0, 0}, {1, 0}), kKmPerDegreeLat, 0.5);
  EXPECT_NEAR(distance_km({45, 7}, {46, 7}), kKmPerDegreeLat, 0.5);
}

TEST(Distance, TriangleInequalitySamples) {
  const std::vector<GeoPoint> points{kRome, kMilan, kLondon, kNewYork, {0, 0}, {45, 100}};
  for (const auto& a : points) {
    for (const auto& b : points) {
      for (const auto& c : points) {
        EXPECT_LE(distance_km(a, c), distance_km(a, b) + distance_km(b, c) + 1e-6);
      }
    }
  }
}

TEST(ApproxDistance, CloseToHaversineAtShortRange) {
  // Points within a few hundred km: equirectangular error well under 1%.
  const GeoPoint near_rome{42.3, 13.1};
  const double exact = distance_km(kRome, near_rome);
  const double approx = approx_distance_km(kRome, near_rome);
  EXPECT_NEAR(approx, exact, exact * 0.01);
}

TEST(Bearing, CardinalDirections) {
  EXPECT_NEAR(initial_bearing_deg({0, 0}, {1, 0}), 0.0, 0.01);    // north
  EXPECT_NEAR(initial_bearing_deg({0, 0}, {0, 1}), 90.0, 0.01);   // east
  EXPECT_NEAR(initial_bearing_deg({1, 0}, {0, 0}), 180.0, 0.01);  // south
  EXPECT_NEAR(initial_bearing_deg({0, 1}, {0, 0}), 270.0, 0.01);  // west
}

TEST(Destination, RoundTripsDistance) {
  for (const double bearing : {0.0, 45.0, 90.0, 135.0, 200.0, 315.0}) {
    for (const double km : {1.0, 10.0, 100.0, 500.0}) {
      const GeoPoint there = destination(kRome, bearing, km);
      EXPECT_NEAR(distance_km(kRome, there), km, km * 0.001 + 0.001)
          << "bearing=" << bearing << " km=" << km;
    }
  }
}

TEST(Destination, ZeroDistanceIsIdentity) {
  const GeoPoint there = destination(kMilan, 123.0, 0.0);
  EXPECT_NEAR(there.lat_deg, kMilan.lat_deg, 1e-9);
  EXPECT_NEAR(there.lon_deg, kMilan.lon_deg, 1e-9);
}

TEST(Destination, BearingMatches) {
  const GeoPoint there = destination(kRome, 60.0, 200.0);
  EXPECT_NEAR(initial_bearing_deg(kRome, there), 60.0, 0.5);
}

TEST(KmPerDegreeLon, ShrinksTowardPoles) {
  EXPECT_NEAR(km_per_degree_lon(0.0), kKmPerDegreeLat, 0.5);
  EXPECT_GT(km_per_degree_lon(0.0), km_per_degree_lon(45.0));
  EXPECT_GT(km_per_degree_lon(45.0), km_per_degree_lon(80.0));
  EXPECT_NEAR(km_per_degree_lon(90.0), 0.0, 1e-9);
}

TEST(BoundingBox, ConstructionValidation) {
  EXPECT_NO_THROW(BoundingBox(0, 1, 0, 1));
  EXPECT_THROW(BoundingBox(1, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(BoundingBox(0, 1, 1, 0), std::invalid_argument);
  EXPECT_THROW(BoundingBox(-91, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(BoundingBox(0, 1, 0, 181), std::invalid_argument);
}

TEST(BoundingBox, AroundContainsAllPoints) {
  const std::vector<GeoPoint> points{kRome, kMilan, kLondon};
  const auto box = BoundingBox::around(points);
  for (const auto& p : points) EXPECT_TRUE(box.contains(p));
  EXPECT_DOUBLE_EQ(box.min_lat(), kRome.lat_deg);
  EXPECT_DOUBLE_EQ(box.max_lat(), kLondon.lat_deg);
}

TEST(BoundingBox, AroundRejectsEmpty) {
  EXPECT_THROW((void)BoundingBox::around({}), std::invalid_argument);
}

TEST(BoundingBox, ExpansionAddsMargin) {
  const std::vector<GeoPoint> points{kRome};
  const auto box = BoundingBox::around(points).expanded_km(100.0);
  EXPECT_TRUE(box.contains(destination(kRome, 0, 99)));
  EXPECT_TRUE(box.contains(destination(kRome, 90, 99)));
  EXPECT_TRUE(box.contains(destination(kRome, 180, 99)));
  EXPECT_FALSE(box.contains(destination(kRome, 0, 150)));
}

TEST(BoundingBox, ExpansionClampsAtPoles) {
  const std::vector<GeoPoint> points{{89.0, 0.0}};
  const auto box = BoundingBox::around(points).expanded_km(500.0);
  EXPECT_LE(box.max_lat(), 90.0);
}

TEST(BoundingBox, DimensionsRoughlyConsistent) {
  const BoundingBox box{41.0, 46.0, 9.0, 13.0};
  EXPECT_NEAR(box.height_km(), 5.0 * kKmPerDegreeLat, 1.0);
  EXPECT_NEAR(box.width_km(), 4.0 * km_per_degree_lon(43.5), 1.0);
  EXPECT_NEAR(box.center().lat_deg, 43.5, 1e-9);
  EXPECT_NEAR(box.center().lon_deg, 11.0, 1e-9);
}

TEST(ToString, FormatsCoordinates) {
  EXPECT_EQ(to_string({41.9028, 12.4964}), "(41.9028, 12.4964)");
}

}  // namespace
}  // namespace eyeball::geo
