#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gazetteer/gazetteer.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"
#include "topology/ip_allocator.hpp"
#include "topology/types.hpp"

namespace eyeball::topology {
namespace {

const gazetteer::Gazetteer& gaz() {
  static const auto instance = gazetteer::Gazetteer::builtin();
  return instance;
}

/// A small but complete ecosystem shared across tests.
const AsEcosystem& small_ecosystem() {
  static const AsEcosystem instance = [] {
    EcosystemConfig config;
    config.seed = 7;
    return generate_ecosystem(gaz(), config.scaled(0.08));
  }();
  return instance;
}

TEST(Ipv4SpaceAllocator, LengthForSizes) {
  EXPECT_EQ(Ipv4SpaceAllocator::length_for(1), 32);
  EXPECT_EQ(Ipv4SpaceAllocator::length_for(2), 31);
  EXPECT_EQ(Ipv4SpaceAllocator::length_for(256), 24);
  EXPECT_EQ(Ipv4SpaceAllocator::length_for(257), 23);
  EXPECT_EQ(Ipv4SpaceAllocator::length_for(1 << 20), 12);
}

TEST(Ipv4SpaceAllocator, BlocksAreAlignedAndDisjoint) {
  Ipv4SpaceAllocator allocator;
  std::vector<net::Ipv4Prefix> blocks;
  for (int i = 0; i < 50; ++i) {
    blocks.push_back(allocator.allocate(12 + (i % 12)));
  }
  for (const auto& block : blocks) {
    EXPECT_EQ(block.address().value() % block.size(), 0u) << block.to_string();
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      EXPECT_FALSE(blocks[i].contains(blocks[j])) << i << " " << j;
      EXPECT_FALSE(blocks[j].contains(blocks[i])) << i << " " << j;
    }
  }
}

TEST(Ipv4SpaceAllocator, SkipsReservedRanges) {
  Ipv4SpaceAllocator allocator;
  for (int i = 0; i < 2000; ++i) {
    const auto block = allocator.allocate(16);
    const auto top = block.address().octet(0);
    EXPECT_NE(top, 0);
    EXPECT_NE(top, 10);
    EXPECT_NE(top, 127);
    EXPECT_LT(top, 224);
  }
}

TEST(Ipv4SpaceAllocator, RejectsBadLength) {
  Ipv4SpaceAllocator allocator;
  EXPECT_THROW((void)allocator.allocate(7), std::invalid_argument);
  EXPECT_THROW((void)allocator.allocate(33), std::invalid_argument);
}

TEST(Ipv4SpaceAllocator, ExhaustsEventually) {
  Ipv4SpaceAllocator allocator;
  EXPECT_THROW(
      {
        for (int i = 0; i < 300; ++i) (void)allocator.allocate(8);
      },
      std::length_error);
}

TEST(AsEcosystemTypes, RoleAndLevelNames) {
  EXPECT_EQ(to_string(AsRole::kEyeball), "eyeball");
  EXPECT_EQ(to_string(AsRole::kTier1), "tier1");
  EXPECT_EQ(to_string(AsLevel::kCity), "city");
  EXPECT_EQ(to_string(AsLevel::kGlobal), "global");
}

TEST(AsEcosystemTypes, RejectsDuplicateAsn) {
  AutonomousSystem a;
  a.asn = net::Asn{5};
  AutonomousSystem b;
  b.asn = net::Asn{5};
  EXPECT_THROW(AsEcosystem({a, b}, {}, {}), std::invalid_argument);
}

TEST(AsEcosystemTypes, RejectsDanglingRelationship) {
  AutonomousSystem a;
  a.asn = net::Asn{5};
  std::vector<AsRelationship> rels{
      {net::Asn{5}, net::Asn{6}, RelationshipType::kCustomerProvider, {}}};
  EXPECT_THROW(AsEcosystem({a}, {}, rels), std::invalid_argument);
}

TEST(AsEcosystemTypes, RejectsUnknownIxpMember) {
  AutonomousSystem a;
  a.asn = net::Asn{5};
  Ixp ixp;
  ixp.name = "X-IX";
  ixp.city = 0;
  ixp.members = {net::Asn{99}};
  EXPECT_THROW(AsEcosystem({a}, {ixp}, {}), std::invalid_argument);
}

TEST(Generator, DeterministicForSameSeed) {
  EcosystemConfig config;
  config.seed = 42;
  const auto a = generate_ecosystem(gaz(), config.scaled(0.05));
  const auto b = generate_ecosystem(gaz(), config.scaled(0.05));
  ASSERT_EQ(a.ases().size(), b.ases().size());
  for (std::size_t i = 0; i < a.ases().size(); ++i) {
    EXPECT_EQ(a.ases()[i].asn, b.ases()[i].asn);
    EXPECT_EQ(a.ases()[i].customers, b.ases()[i].customers);
    EXPECT_EQ(a.ases()[i].pops.size(), b.ases()[i].pops.size());
  }
  EXPECT_EQ(a.relationships().size(), b.relationships().size());
}

TEST(Generator, DifferentSeedsDiffer) {
  EcosystemConfig config;
  config.seed = 1;
  const auto a = generate_ecosystem(gaz(), config.scaled(0.05));
  config.seed = 2;
  const auto b = generate_ecosystem(gaz(), config.scaled(0.05));
  // Same counts, different customer draws.
  bool any_difference = false;
  for (std::size_t i = 0; i < std::min(a.ases().size(), b.ases().size()); ++i) {
    if (a.ases()[i].customers != b.ases()[i].customers) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, ProducesAllRoles) {
  const auto& eco = small_ecosystem();
  std::map<AsRole, int> roles;
  for (const auto& as : eco.ases()) ++roles[as.role];
  EXPECT_GT(roles[AsRole::kTier1], 0);
  EXPECT_GT(roles[AsRole::kTransit], 0);
  EXPECT_GT(roles[AsRole::kEyeball], 0);
  EXPECT_GT(roles[AsRole::kContent], 0);
}

TEST(Generator, EyeballCountsMatchConfig) {
  EcosystemConfig config;
  config.seed = 11;
  const auto scaled = config.scaled(0.05);
  const auto eco = generate_ecosystem(gaz(), scaled);
  std::map<std::pair<gazetteer::Continent, AsLevel>, int> counts;
  for (const auto& as : eco.ases()) {
    if (as.role == AsRole::kEyeball) ++counts[{as.continent, as.level}];
  }
  using gazetteer::Continent;
  const auto count_of = [&](Continent continent, AsLevel level) {
    return counts[{continent, level}];
  };
  EXPECT_EQ(count_of(Continent::kNorthAmerica, AsLevel::kCity), scaled.north_america.city);
  EXPECT_EQ(count_of(Continent::kEurope, AsLevel::kCountry), scaled.europe.country);
  EXPECT_EQ(count_of(Continent::kAsia, AsLevel::kState), scaled.asia.state);
}

TEST(Generator, EyeballsHaveCustomersAndPops) {
  for (const auto& as : small_ecosystem().ases()) {
    if (as.role != AsRole::kEyeball) continue;
    EXPECT_GE(as.customers, 30000u) << as.name;
    EXPECT_GE(as.service_pop_count(), 1u) << as.name;
    double total_share = 0.0;
    for (const auto& pop : as.pops) {
      if (!pop.transit_only) {
        EXPECT_GT(pop.customer_share, 0.0);
        EXPECT_FALSE(pop.prefixes.empty());
        total_share += pop.customer_share;
      }
    }
    EXPECT_NEAR(total_share, 1.0, 1e-9) << as.name;
  }
}

TEST(Generator, CityLevelEyeballsHaveOneServicePop) {
  for (const auto& as : small_ecosystem().ases()) {
    if (as.role == AsRole::kEyeball && as.level == AsLevel::kCity) {
      EXPECT_EQ(as.service_pop_count(), 1u) << as.name;
    }
  }
}

TEST(Generator, PopCitiesBelongToCoverageCountry) {
  for (const auto& as : small_ecosystem().ases()) {
    if (as.role != AsRole::kEyeball || as.country_code.empty()) continue;
    for (const auto& pop : as.pops) {
      if (pop.transit_only) continue;  // transit PoPs may sit anywhere
      EXPECT_EQ(gaz().city(pop.city).country_code, as.country_code) << as.name;
    }
  }
}

TEST(Generator, PopsOnlyAtRealCities) {
  // ISP PoPs live in real cities; generated satellite towns exist only for
  // the peak-to-city mapping granularity.
  for (const auto& as : small_ecosystem().ases()) {
    for (const auto& pop : as.pops) {
      EXPECT_FALSE(gaz().city(pop.city).is_satellite)
          << as.name << " has a PoP at " << gaz().city(pop.city).name;
    }
  }
}

TEST(Generator, AddressPoolCoversCustomers) {
  for (const auto& as : small_ecosystem().ases()) {
    if (as.role != AsRole::kEyeball) continue;
    EXPECT_GE(as.address_count(), as.customers) << as.name;
  }
}

TEST(Generator, PrefixesGloballyDisjoint) {
  std::vector<net::Ipv4Prefix> all;
  for (const auto& as : small_ecosystem().ases()) {
    for (const auto& pop : as.pops) {
      for (const auto& prefix : pop.prefixes) all.push_back(prefix);
    }
  }
  // Sort by address; overlapping aligned blocks must nest, so adjacency
  // check suffices after sorting.
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.address().value() < b.address().value();
  });
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i - 1].contains(all[i]) || all[i].contains(all[i - 1]))
        << all[i - 1].to_string() << " vs " << all[i].to_string();
  }
}

TEST(Generator, EveryEyeballHasAtLeastOneProvider) {
  const auto& eco = small_ecosystem();
  for (const auto& as : eco.ases()) {
    if (as.role == AsRole::kEyeball || as.role == AsRole::kContent ||
        as.role == AsRole::kTransit) {
      EXPECT_GE(eco.providers_of(as.asn).size(), 1u) << as.name;
    }
  }
}

TEST(Generator, RelationshipsAreValleyFreeByTier) {
  // No tier-1 is a customer of anyone.
  const auto& eco = small_ecosystem();
  for (const auto& rel : eco.relationships()) {
    if (rel.type == RelationshipType::kCustomerProvider) {
      EXPECT_NE(eco.at(rel.customer).role, AsRole::kTier1)
          << net::to_string(rel.customer);
    }
  }
}

TEST(Generator, NoSelfOrDuplicateEdges) {
  const auto& eco = small_ecosystem();
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const auto& rel : eco.relationships()) {
    EXPECT_NE(rel.customer, rel.provider);
    EXPECT_TRUE(
        seen.emplace(net::value_of(rel.customer), net::value_of(rel.provider)).second);
  }
}

TEST(Generator, IxpsAtBigCitiesAndDenserInEurope) {
  EcosystemConfig config;
  config.seed = 3;
  const auto eco = generate_ecosystem(gaz(), config.scaled(0.05));
  int europe = 0;
  int elsewhere = 0;
  for (const auto& ixp : eco.ixps()) {
    const auto& city = gaz().city(ixp.city);
    if (city.continent == gazetteer::Continent::kEurope) {
      EXPECT_GE(city.population, config.ixp_min_population_europe);
      ++europe;
    } else {
      EXPECT_GE(city.population, config.ixp_min_population_other);
      ++elsewhere;
    }
  }
  EXPECT_GT(europe, 0);
  EXPECT_GT(elsewhere, 0);
}

TEST(Generator, IxpPeeringsReferenceSharedIxp) {
  const auto& eco = small_ecosystem();
  for (const auto& rel : eco.relationships()) {
    if (rel.type == RelationshipType::kPeerPeer && rel.ixp_index) {
      const auto& ixp = eco.ixps()[*rel.ixp_index];
      EXPECT_TRUE(ixp.has_member(rel.customer));
      EXPECT_TRUE(ixp.has_member(rel.provider));
    }
  }
}

TEST(Generator, EcosystemQueriesConsistent) {
  const auto& eco = small_ecosystem();
  const auto eyeballs = eco.eyeballs();
  ASSERT_FALSE(eyeballs.empty());
  const auto asn = eyeballs.front();
  for (const auto provider : eco.providers_of(asn)) {
    const auto customers = eco.customers_of(provider);
    EXPECT_NE(std::find(customers.begin(), customers.end(), asn), customers.end());
  }
  for (const auto peer : eco.peers_of(asn)) {
    const auto peers_back = eco.peers_of(peer);
    EXPECT_NE(std::find(peers_back.begin(), peers_back.end(), asn), peers_back.end());
  }
}

TEST(GroundTruth, LocatesAllocatedIps) {
  const auto& eco = small_ecosystem();
  const GroundTruthLocator locator{eco, gaz()};
  for (const auto& as : eco.ases()) {
    if (as.role != AsRole::kEyeball) continue;
    for (const auto& pop : as.pops) {
      for (const auto& prefix : pop.prefixes) {
        const auto truth = locator.locate(prefix.first());
        ASSERT_TRUE(truth) << prefix.to_string();
        EXPECT_EQ(truth->asn, as.asn);
        EXPECT_EQ(truth->city, pop.city);
        EXPECT_EQ(truth->transit_only, pop.transit_only);
      }
    }
    break;  // one AS suffices per iteration cost
  }
}

TEST(GroundTruth, UnallocatedIpHasNoTruth) {
  const GroundTruthLocator locator{small_ecosystem(), gaz()};
  EXPECT_FALSE(locator.locate(net::Ipv4Address{223, 255, 255, 254}));
  EXPECT_FALSE(locator.origin(net::Ipv4Address{223, 255, 255, 254}));
}

TEST(GroundTruth, LocationNearPopCity) {
  const auto& eco = small_ecosystem();
  const GroundTruthLocator locator{eco, gaz()};
  int checked = 0;
  for (const auto& as : eco.ases()) {
    for (const auto& pop : as.pops) {
      for (const auto& prefix : pop.prefixes) {
        const auto truth = locator.locate(
            net::Ipv4Address{prefix.address().value() + 1});
        ASSERT_TRUE(truth);
        const auto& city = gaz().city(pop.city);
        const double spread =
            GroundTruthLocator::default_zip_config().spread_factor * city.radius_km();
        EXPECT_LE(geo::distance_km(truth->location, city.location), 2.5 * spread + 0.1);
        if (++checked > 200) return;
      }
    }
  }
}

TEST(GroundTruth, DeterministicPerIp) {
  const GroundTruthLocator locator{small_ecosystem(), gaz()};
  const auto& as = small_ecosystem().ases()[5];
  ASSERT_FALSE(as.pops.empty());
  const auto ip = as.pops[0].prefixes[0].first();
  const auto a = locator.locate(ip);
  const auto b = locator.locate(ip);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->location, b->location);
}

TEST(EcosystemConfig, ScalingKeepsMinimumOne) {
  EcosystemConfig config;
  const auto tiny = config.scaled(0.001);
  EXPECT_GE(tiny.north_america.city, 1);
  EXPECT_GE(tiny.europe.country, 1);
  EXPECT_GE(tiny.tier1_count, 3);
}

}  // namespace
}  // namespace eyeball::topology
