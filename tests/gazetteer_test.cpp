#include <gtest/gtest.h>

#include <set>

#include "gazetteer/gazetteer.hpp"
#include "gazetteer/world_data.hpp"
#include "gazetteer/zip_lattice.hpp"

namespace eyeball::gazetteer {
namespace {

class GazetteerTest : public ::testing::Test {
 protected:
  static const Gazetteer& gaz() {
    static const Gazetteer instance = Gazetteer::builtin();
    return instance;
  }
};

TEST_F(GazetteerTest, BuiltinHasSubstantialCoverage) {
  EXPECT_GE(gaz().cities().size(), 450u);
  EXPECT_GE(gaz().countries().size(), 40u);
}

TEST_F(GazetteerTest, AllCoordinatesValid) {
  for (const auto& city : gaz().cities()) {
    EXPECT_TRUE(geo::is_valid(city.location)) << city.name;
    EXPECT_GT(city.population, 0u) << city.name;
    EXPECT_FALSE(city.name.empty());
    EXPECT_FALSE(city.region.empty()) << city.name;
    EXPECT_EQ(city.country_code.size(), 2u) << city.name;
  }
}

TEST_F(GazetteerTest, IdsMatchIndices) {
  for (std::size_t i = 0; i < gaz().cities().size(); ++i) {
    EXPECT_EQ(gaz().cities()[i].id, static_cast<CityId>(i));
    EXPECT_EQ(&gaz().city(static_cast<CityId>(i)), &gaz().cities()[i]);
  }
}

TEST_F(GazetteerTest, NoDuplicateNameWithinCountry) {
  std::set<std::pair<std::string_view, std::string_view>> seen;
  for (const auto& city : gaz().cities()) {
    EXPECT_TRUE(seen.emplace(city.country_code, city.name).second)
        << "duplicate " << city.name << " in " << city.country_code;
  }
}

TEST_F(GazetteerTest, PaperItalianCitiesPresent) {
  // Every city in the paper's AS3269 PoP list must exist for Figure 1.
  for (const auto name : {"Milan", "Rome", "Florence", "Venice", "Naples", "Turin",
                          "Ancona", "Catania", "Palermo", "Pescara", "Bari",
                          "Catanzaro", "Cagliari", "Sassari"}) {
    EXPECT_TRUE(gaz().find_by_name(name, "IT").has_value()) << name;
  }
}

TEST_F(GazetteerTest, FindByNameRespectsCountryFilter) {
  EXPECT_TRUE(gaz().find_by_name("Rome", "IT"));
  EXPECT_FALSE(gaz().find_by_name("Rome", "FR"));
  EXPECT_TRUE(gaz().find_by_name("Rome"));
  EXPECT_FALSE(gaz().find_by_name("Atlantis"));
}

TEST_F(GazetteerTest, NearestCityOfCityCenterIsItself) {
  for (const auto name : {"Rome", "Tokyo", "New York", "Sydney", "Moscow"}) {
    const auto id = gaz().find_by_name(name);
    ASSERT_TRUE(id);
    EXPECT_EQ(gaz().nearest_city(gaz().city(*id).location), *id) << name;
  }
}

TEST_F(GazetteerTest, NearestCityForOffsetPoint) {
  const auto milan = gaz().find_by_name("Milan", "IT");
  ASSERT_TRUE(milan);
  // 5 km west of Milan is still closest to Milan (Monza lies to the NE).
  const auto p = geo::destination(gaz().city(*milan).location, 270.0, 5.0);
  EXPECT_EQ(gaz().nearest_city(p), *milan);
}

TEST_F(GazetteerTest, NearestCityAgreesWithBruteForce) {
  // Property: grid-accelerated query == linear scan, on a lat/lon sweep.
  for (double lat = -60.0; lat <= 70.0; lat += 13.0) {
    for (double lon = -170.0; lon < 180.0; lon += 23.0) {
      const geo::GeoPoint p{lat, lon};
      CityId best = kInvalidCity;
      double best_dist = 1e18;
      for (const auto& city : gaz().cities()) {
        const double d = geo::distance_km(p, city.location);
        if (d < best_dist) {
          best_dist = d;
          best = city.id;
        }
      }
      const CityId got = gaz().nearest_city(p);
      EXPECT_NEAR(geo::distance_km(p, gaz().city(got).location), best_dist, 1e-6)
          << "at (" << lat << "," << lon << "), brute-force best=" << best;
    }
  }
}

TEST_F(GazetteerTest, CitiesWithinRadius) {
  const auto rome = gaz().find_by_name("Rome", "IT");
  ASSERT_TRUE(rome);
  const auto& rome_city = gaz().city(*rome);
  const auto within = gaz().cities_within(rome_city.location, 250.0);
  EXPECT_FALSE(within.empty());
  for (const CityId id : within) {
    EXPECT_LE(geo::distance_km(rome_city.location, gaz().city(id).location), 250.0);
  }
  // Naples (~190 km) should be inside; Milan (~477 km) outside.
  const auto naples = gaz().find_by_name("Naples", "IT");
  const auto milan = gaz().find_by_name("Milan", "IT");
  EXPECT_NE(std::find(within.begin(), within.end(), *naples), within.end());
  EXPECT_EQ(std::find(within.begin(), within.end(), *milan), within.end());
}

TEST_F(GazetteerTest, LargestCityWithinPicksByPopulation) {
  // Between Milan and Monza, Milan wins by population.
  const auto monza = gaz().find_by_name("Monza", "IT");
  ASSERT_TRUE(monza);
  const auto winner = gaz().largest_city_within(gaz().city(*monza).location, 40.0);
  ASSERT_TRUE(winner);
  EXPECT_EQ(gaz().city(*winner).name, "Milan");
}

TEST_F(GazetteerTest, LargestCityWithinEmptyRegion) {
  // Middle of the Atlantic: nothing within 40 km.
  EXPECT_FALSE(gaz().largest_city_within({30.0, -45.0}, 40.0).has_value());
}

TEST_F(GazetteerTest, CountryAndRegionQueries) {
  const auto italian = gaz().cities_in_country("IT");
  EXPECT_GE(italian.size(), 40u);
  for (const CityId id : italian) EXPECT_EQ(gaz().city(id).country_code, "IT");

  const auto lombardy = gaz().cities_in_region("IT", "Lombardy");
  EXPECT_GE(lombardy.size(), 3u);  // Milan, Brescia, Monza, Bergamo
  for (const CityId id : lombardy) EXPECT_EQ(gaz().city(id).region, "Lombardy");

  const auto europe = gaz().cities_in_continent(Continent::kEurope);
  EXPECT_GT(europe.size(), 150u);
}

TEST_F(GazetteerTest, CountryMetadata) {
  const Country* italy = gaz().find_country("IT");
  ASSERT_NE(italy, nullptr);
  EXPECT_EQ(italy->name, "Italy");
  EXPECT_EQ(italy->continent, Continent::kEurope);
  EXPECT_EQ(gaz().find_country("XX"), nullptr);
}

TEST_F(GazetteerTest, CountryPopulationIsSumOfCities) {
  std::uint64_t expected = 0;
  for (const auto& city : gaz().cities()) {
    if (city.country_code == "IT") expected += city.population;
  }
  EXPECT_EQ(gaz().country_population("IT"), expected);
  EXPECT_GT(expected, 10000000u);
}

TEST_F(GazetteerTest, ContinentCodes) {
  EXPECT_EQ(to_code(Continent::kNorthAmerica), "NA");
  EXPECT_EQ(to_code(Continent::kEurope), "EU");
  EXPECT_EQ(to_code(Continent::kAsia), "AS");
  EXPECT_EQ(to_string(Continent::kOceania), "Oceania");
}

TEST_F(GazetteerTest, CityRadiusScalesWithPopulation) {
  const auto& rome = gaz().city(*gaz().find_by_name("Rome", "IT"));
  const auto& siena = gaz().city(*gaz().find_by_name("Siena", "IT"));
  EXPECT_GT(rome.radius_km(), siena.radius_km());
  EXPECT_GE(siena.radius_km(), 2.0);
  EXPECT_LE(rome.radius_km(), 30.0);
}

TEST(GazetteerConstruction, RejectsEmpty) {
  EXPECT_THROW(Gazetteer{std::vector<City>{}}, std::invalid_argument);
}

TEST(GazetteerConstruction, RejectsInvalidCoordinates) {
  City bad;
  bad.name = "Nowhere";
  bad.region = "X";
  bad.country_code = "XX";
  bad.location = {100.0, 0.0};
  bad.population = 1;
  EXPECT_THROW(Gazetteer{std::vector<City>{bad}}, std::invalid_argument);
}

TEST_F(GazetteerTest, ZipCentroidsDeterministic) {
  const auto& milan = gaz().city(*gaz().find_by_name("Milan", "IT"));
  const auto a = zip_centroids(milan);
  const auto b = zip_centroids(milan);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST_F(GazetteerTest, ZipCentroidCountScalesWithPopulation) {
  const auto& milan = gaz().city(*gaz().find_by_name("Milan", "IT"));
  const auto& siena = gaz().city(*gaz().find_by_name("Siena", "IT"));
  EXPECT_GT(zip_centroids(milan).size(), zip_centroids(siena).size());
  EXPECT_GE(zip_centroids(siena).size(), 3u);
}

TEST_F(GazetteerTest, ZipCentroidsNearCity) {
  const auto& milan = gaz().city(*gaz().find_by_name("Milan", "IT"));
  for (const auto& zip : zip_centroids(milan)) {
    EXPECT_LE(geo::distance_km(zip, milan.location), 2.5 * milan.radius_km() + 0.1);
  }
}

TEST_F(GazetteerTest, ZipCentroidsRespectConfig) {
  const auto& milan = gaz().city(*gaz().find_by_name("Milan", "IT"));
  ZipLatticeConfig config;
  config.max_zips_per_city = 5;
  EXPECT_EQ(zip_centroids(milan, config).size(), 5u);

  ZipLatticeConfig other;
  other.seed = 999;
  EXPECT_NE(zip_centroids(milan)[0], zip_centroids(milan, other)[0]);
}

TEST_F(GazetteerTest, SnapToZipReturnsLatticeMember) {
  const auto& milan = gaz().city(*gaz().find_by_name("Milan", "IT"));
  const auto lattice = zip_centroids(milan);
  const auto snapped = snap_to_zip(milan, milan.location);
  EXPECT_NE(std::find(lattice.begin(), lattice.end(), snapped), lattice.end());
}

TEST_F(GazetteerTest, SatelliteFabricExists) {
  std::size_t satellites = 0;
  std::size_t real_cities = 0;
  for (const auto& city : gaz().cities()) {
    if (city.is_satellite) {
      ++satellites;
      EXPECT_NE(city.name.find("(satellite"), std::string_view::npos) << city.name;
      EXPECT_GE(city.population, 15000u);
      EXPECT_LT(city.population, 80000u);
    } else {
      ++real_cities;
      EXPECT_EQ(city.name.find("(satellite"), std::string_view::npos) << city.name;
    }
  }
  EXPECT_GE(real_cities, 450u);
  // Every metro >= 150k spawns towns: the fabric outnumbers the cities.
  EXPECT_GT(satellites, real_cities);
}

TEST_F(GazetteerTest, SatellitesInheritParentAdminDivision) {
  const auto& milan = gaz().city(*gaz().find_by_name("Milan", "IT"));
  std::size_t found = 0;
  for (const auto& city : gaz().cities()) {
    if (!city.is_satellite || city.name.find("Milan (satellite") != 0) continue;
    ++found;
    EXPECT_EQ(city.region, milan.region);
    EXPECT_EQ(city.country_code, "IT");
    EXPECT_EQ(city.continent, gazetteer::Continent::kEurope);
    // On the user-placement lattice: within its 2.5x spread cap.
    EXPECT_LE(geo::distance_km(city.location, milan.location), 2.5 * 24.0 + 0.1);
  }
  EXPECT_GT(found, 5u);
}

TEST_F(GazetteerTest, MetroCenterBeatsSatellitesByPopulation) {
  // largest_city_within from any satellite of Rome must return Rome itself
  // when Rome is inside the radius.
  const auto rome = *gaz().find_by_name("Rome", "IT");
  for (const auto& city : gaz().cities()) {
    if (!city.is_satellite || city.name.find("Rome (satellite") != 0) continue;
    if (geo::distance_km(city.location, gaz().city(rome).location) > 35.0) continue;
    const auto winner = gaz().largest_city_within(city.location, 40.0);
    ASSERT_TRUE(winner);
    EXPECT_EQ(gaz().city(*winner).name, "Rome");
  }
}

TEST(WorldData, CountryLookup) {
  ASSERT_NE(find_builtin_country("IT"), nullptr);
  EXPECT_EQ(find_builtin_country("IT")->name, "Italy");
  EXPECT_EQ(find_builtin_country("ZZ"), nullptr);
}

}  // namespace
}  // namespace eyeball::gazetteer
