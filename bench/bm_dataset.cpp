// Sharded dataset-build benchmarks (the §2 conditioning stage): geo-mapping
// + inter-database error filter + BGP LPM grouping + per-AS filters over the
// full crawl, with a threads axis (1/2/4/hardware).  Results are
// byte-identical across the axis; only wall clock moves.  The committed
// baseline lives in BENCH_dataset.json (see README "Benchmarks").
//
// The Streaming/Longitudinal benchmarks split the crawl into six windows
// (the paper's six monthly snapshots) and compare the streaming ingest path
// against rebuilding the conditioned dataset from scratch per snapshot:
// ingesting window k must cost work proportional to window k (compare
// StreamingIngestLastWindow against DatasetBuildThreads), while the rebuild
// axis pays the cumulative sample count every window.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/artifact.hpp"
#include "core/snapshot.hpp"
#include "core/streaming_dataset.hpp"
#include "geo/point.hpp"
#include "kde/estimator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace eyeball;

const bench::World& world() {
  static const bench::World instance = bench::World::generated(0.05, 0.2);
  return instance;
}

constexpr std::size_t kWindows = 6;

/// The crawl split into six contiguous "monthly" windows.
std::vector<std::span<const p2p::PeerSample>> crawl_windows() {
  const std::span<const p2p::PeerSample> all{world().crawl.samples};
  const std::size_t chunk = (all.size() + kWindows - 1) / kWindows;
  std::vector<std::span<const p2p::PeerSample>> out;
  for (std::size_t lo = 0; lo < all.size(); lo += chunk) {
    out.push_back(all.subspan(lo, std::min(chunk, all.size() - lo)));
  }
  return out;
}

void BM_DatasetBuildThreads(benchmark::State& state) {
  const auto& w = world();
  const auto threads = static_cast<std::size_t>(state.range(0));  // 0 = hardware
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pipeline.build_dataset(w.crawl.samples, threads));
  }
  const auto effective =
      threads == 0 ? util::ThreadPool::shared().worker_count() : threads;
  state.SetLabel(std::to_string(effective) + " threads, " +
                 std::to_string(w.crawl.samples.size()) + " samples");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.crawl.samples.size()));
}
BENCHMARK(BM_DatasetBuildThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// The same build with the per-shard lookup memo disabled — the delta is
// what IP repetition in the crawl buys the geo-mapping stage.
void BM_DatasetBuildNoMemo(benchmark::State& state) {
  const auto& w = world();
  core::DatasetConfig config = w.pipeline.config().dataset;
  config.lookup_memo_slots = 0;
  const core::DatasetBuilder builder{w.primary, w.secondary, w.mapper, config};
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(w.crawl.samples, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.crawl.samples.size()));
}
BENCHMARK(BM_DatasetBuildNoMemo)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Marginal cost of the streaming path: windows 0..4 are ingested outside the
// timed region, then only the final window's ingest is measured.  Work should
// track the last window's sample count, not the cumulative crawl — compare
// items/s against BM_DatasetBuildThreads at the same thread count.
void BM_StreamingIngestLastWindow(benchmark::State& state) {
  const auto& w = world();
  const auto windows = crawl_windows();
  const auto threads = static_cast<std::size_t>(state.range(0));  // 0 = hardware
  for (auto _ : state) {
    state.PauseTiming();
    core::StreamingDatasetBuilder stream = w.pipeline.streaming_builder();
    for (std::size_t k = 0; k + 1 < windows.size(); ++k) {
      stream.ingest(windows[k], threads);
    }
    state.ResumeTiming();
    stream.ingest(windows.back(), threads);
    benchmark::DoNotOptimize(stream.unique_samples());
  }
  state.SetLabel(std::to_string(windows.back().size()) + " samples in window " +
                 std::to_string(windows.size() - 1) + " of " +
                 std::to_string(w.crawl.samples.size()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(windows.back().size()));
}
BENCHMARK(BM_StreamingIngestLastWindow)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// The full longitudinal workload, streaming path: ingest each window and
// re-filter (finalize) after every snapshot, as repro_churn does.
void BM_LongitudinalStreamingTotal(benchmark::State& state) {
  const auto& w = world();
  const auto windows = crawl_windows();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::StreamingDatasetBuilder stream = w.pipeline.streaming_builder();
    for (const auto& window : windows) {
      stream.ingest(window, threads);
      benchmark::DoNotOptimize(stream.finalize(threads));
    }
  }
  state.SetLabel(std::to_string(windows.size()) + " windows, " +
                 std::to_string(w.crawl.samples.size()) + " samples total");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.crawl.samples.size()));
}
BENCHMARK(BM_LongitudinalStreamingTotal)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// The rebuild axis the streaming path replaces: after each snapshot, rebuild
// the conditioned dataset from scratch over the cumulative prefix.  Pays the
// full cumulative sample count every window (quadratic in window count).
void BM_LongitudinalRebuildTotal(benchmark::State& state) {
  const auto& w = world();
  const std::span<const p2p::PeerSample> all{w.crawl.samples};
  const auto windows = crawl_windows();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::size_t end = 0;
    for (const auto& window : windows) {
      end += window.size();
      benchmark::DoNotOptimize(
          w.pipeline.build_dataset(all.subspan(0, end), threads));
    }
  }
  state.SetLabel(std::to_string(windows.size()) + " rebuilds over growing prefixes");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.crawl.samples.size()));
}
BENCHMARK(BM_LongitudinalRebuildTotal)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

/// Scratch directory for the snapshot benchmarks, reset per run so the
/// generation counter and prune set start from a known state.
std::string snapshot_bench_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string{"eyeball_bench_"} + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

// Crash-safety economics, write side: the cost of persisting the full
// six-window streaming state (canonical encode + CRCs + temp-fsync-rename),
// with the snapshot size on the label.  save_snapshot prunes to the two
// newest generations, so the loop does not grow the directory.
void BM_SnapshotSave(benchmark::State& state) {
  const auto& w = world();
  core::StreamingDatasetBuilder stream = w.pipeline.streaming_builder();
  for (const auto& window : crawl_windows()) stream.ingest(window, 0);
  const std::string dir = snapshot_bench_dir("snapshot_save");
  for (auto _ : state) {
    if (!stream.save_snapshot(dir).ok()) {
      state.SkipWithError("save_snapshot failed");
      break;
    }
  }
  const std::size_t bytes = core::SnapshotCodec::encode(stream, 0).size();
  state.SetLabel(std::to_string(bytes) + " byte snapshot, " +
                 std::to_string(stream.unique_samples()) + " unique samples");
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMillisecond);

// Crash-safety economics, read side: restoring the six-window state into a
// fresh builder.  items/s counts the crawl samples the restored state covers,
// so the rate is directly comparable with BM_DatasetBuildThreads /
// BM_LongitudinalStreamingTotal — the replay work a restore avoids.
void BM_SnapshotRestore(benchmark::State& state) {
  const auto& w = world();
  core::StreamingDatasetBuilder stream = w.pipeline.streaming_builder();
  for (const auto& window : crawl_windows()) stream.ingest(window, 0);
  const std::string dir = snapshot_bench_dir("snapshot_restore");
  if (!stream.save_snapshot(dir).ok()) {
    state.SkipWithError("seed save_snapshot failed");
    return;
  }
  for (auto _ : state) {
    core::StreamingDatasetBuilder restored = w.pipeline.streaming_builder();
    if (!restored.restore_snapshot(dir).ok()) {
      state.SkipWithError("restore_snapshot failed");
      break;
    }
    benchmark::DoNotOptimize(restored.unique_samples());
  }
  state.SetLabel("replaces replay of " +
                 std::to_string(w.crawl.samples.size()) + " samples");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.crawl.samples.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMillisecond);

// Separable-convolution axis for the KDE engine, kept in this baseline next
// to the conditioning axes because the two are the pipeline's raw-speed hot
// paths (see ISSUE 7 / DESIGN.md "Data layout & vectorization").  The
// workload is convolution-dominated by construction — few points, fine grid,
// wide kernel (sigma = 20 cells, 121 taps per pass) — so the time tracks the
// horizontal + vertical blur passes rather than binning, and items/s counts
// grid cells, not samples.
void BM_KdeSeparable(benchmark::State& state) {
  util::Rng rng{7};
  const geo::GeoPoint rome{41.9028, 12.4964};
  std::vector<geo::GeoPoint> points;
  points.reserve(20000);
  for (std::size_t i = 0; i < 20000; ++i) {
    points.push_back(geo::destination(rome, rng.uniform(0.0, 360.0),
                                      rng.uniform(0.0, 500.0)));
  }
  kde::KdeConfig config;
  config.bandwidth_km = 40.0;
  config.cell_km = 2.0;
  config.threads = static_cast<std::size_t>(state.range(0));  // 0 = hardware
  const kde::KernelDensityEstimator estimator{config};
  const auto box = estimator.padded_box(points);
  std::size_t cells = 0;
  for (auto _ : state) {
    const auto grid = estimator.estimate(points, box);
    cells = grid.rows() * grid.cols();
    benchmark::DoNotOptimize(grid.max_cell());
  }
  const auto effective = config.threads == 0
                             ? util::ThreadPool::shared().worker_count()
                             : config.threads;
  state.SetLabel(std::to_string(effective) + " threads, " +
                 std::to_string(cells) + " cells, 121-tap kernel");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cells));
}
BENCHMARK(BM_KdeSeparable)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// ---- Serving-artifact economics (core/artifact.hpp): the zero-copy mmap
// restore path.  Write side prices publish-time emission; the open side is
// the acceptance-pinned number — open + full validation + first query must
// stay in tens of milliseconds because restore cost is what bounds replica
// fleet spin-up. ----

/// Per-AS analyses for the bench dataset, computed once (the artifact
/// persists dataset AND analyses).
const std::vector<core::AsAnalysis>& world_analyses() {
  static const std::vector<core::AsAnalysis> instance =
      world().pipeline.refresh_analyses(world().dataset, {}, {});
  return instance;
}

std::uint64_t world_fingerprint() {
  return core::SnapshotCodec::config_fingerprint(world().pipeline.config().dataset);
}

// Canonical encode + checked atomic write of the full epoch.
void BM_ArtifactWrite(benchmark::State& state) {
  const auto& w = world();
  const auto& analyses = world_analyses();
  const std::string path = snapshot_bench_dir("artifact_write") + "/epoch.eyb";
  std::filesystem::create_directories(std::filesystem::path{path}.parent_path());
  for (auto _ : state) {
    if (!core::ArtifactCodec::write(util::local_filesystem(), path, w.dataset,
                                    analyses, 1, world_fingerprint())
             .ok()) {
      state.SkipWithError("artifact write failed");
      break;
    }
  }
  const auto bytes = static_cast<std::int64_t>(std::filesystem::file_size(path));
  state.SetLabel(std::to_string(bytes) + " byte artifact, " +
                 std::to_string(w.dataset.ases().size()) + " ASes");
  state.SetBytesProcessed(state.iterations() * bytes);
  std::filesystem::remove_all(std::filesystem::path{path}.parent_path());
}
BENCHMARK(BM_ArtifactWrite)->Unit(benchmark::kMillisecond);

// mmap + full validation (CRCs + structural walk) + first query: the
// replica restore path end to end.  The acceptance bar for this repo is
// ≤ 50ms here (see README "Benchmarks").
void BM_ArtifactOpen(benchmark::State& state) {
  const auto& w = world();
  const std::string path = snapshot_bench_dir("artifact_open") + "/epoch.eyb";
  std::filesystem::create_directories(std::filesystem::path{path}.parent_path());
  if (!core::ArtifactCodec::write(util::local_filesystem(), path, w.dataset,
                                  world_analyses(), 1, world_fingerprint())
           .ok()) {
    state.SkipWithError("seed artifact write failed");
    return;
  }
  const net::Asn probe = w.dataset.ases()[w.dataset.ases().size() / 2].asn;
  for (auto _ : state) {
    core::ArtifactView view;
    if (!core::ArtifactView::open(path, view).ok()) {
      state.SkipWithError("artifact open failed");
      break;
    }
    // First query: point lookup + thaw of that AS out of the mapped image.
    const auto index = view.find_index(probe);
    if (!index.has_value()) {
      state.SkipWithError("probe ASN missing from artifact");
      break;
    }
    benchmark::DoNotOptimize(view.as_at(*index).materialize());
  }
  state.SetLabel(std::to_string(std::filesystem::file_size(path)) +
                 " bytes validated + 1 AS thawed");
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(std::filesystem::file_size(path)));
  std::filesystem::remove_all(std::filesystem::path{path}.parent_path());
}
BENCHMARK(BM_ArtifactOpen)->Unit(benchmark::kMillisecond);

// Point lookups answered in place from the mapped image (no materialize):
// the artifact sibling of BM_DatasetFind below, plus a peer sweep so the
// loop actually touches mapped arena bytes, not just the index.
void BM_ArtifactFindThroughView(benchmark::State& state) {
  const auto& w = world();
  static const std::vector<std::byte>& image = [] {
    static std::vector<std::byte> bytes;
    if (!core::ArtifactCodec::encode(world().dataset, world_analyses(), 1,
                                     world_fingerprint(), bytes)
             .ok()) {
      bytes.clear();
    }
    return bytes;
  }();
  core::ArtifactView view;
  if (image.empty() || !core::ArtifactView::from_bytes(image, view).ok()) {
    state.SkipWithError("artifact encode/open failed");
    return;
  }
  const auto ases = w.dataset.ases();
  std::size_t cursor = 0;
  double sink = 0.0;
  for (auto _ : state) {
    const auto index = view.find_index(ases[cursor].asn);
    const auto as = view.as_at(*index);
    sink += as.dominant_share();
    if (as.peer_count() != 0) sink += as.peer(0).location.lat_deg;
    cursor = (cursor + 1) % ases.size();
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::to_string(ases.size()) + " ASes, in-place reads");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArtifactFindThroughView);

void BM_DatasetFind(benchmark::State& state) {
  const auto& w = world();
  const auto ases = w.dataset.ases();
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.dataset.find(ases[cursor].asn));
    cursor = (cursor + 1) % ases.size();
  }
  state.SetLabel(std::to_string(ases.size()) + " ASes");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatasetFind);

}  // namespace

EYEBALL_BENCHMARK_MAIN()
