// Sharded dataset-build benchmarks (the §2 conditioning stage): geo-mapping
// + inter-database error filter + BGP LPM grouping + per-AS filters over the
// full crawl, with a threads axis (1/2/4/hardware).  Results are
// byte-identical across the axis; only wall clock moves.  The committed
// baseline lives in BENCH_dataset.json (see README "Benchmarks").
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace eyeball;

const bench::World& world() {
  static const bench::World instance = bench::World::generated(0.05, 0.2);
  return instance;
}

void BM_DatasetBuildThreads(benchmark::State& state) {
  const auto& w = world();
  const auto threads = static_cast<std::size_t>(state.range(0));  // 0 = hardware
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pipeline.build_dataset(w.crawl.samples, threads));
  }
  const auto effective =
      threads == 0 ? util::ThreadPool::shared().worker_count() : threads;
  state.SetLabel(std::to_string(effective) + " threads, " +
                 std::to_string(w.crawl.samples.size()) + " samples");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.crawl.samples.size()));
}
BENCHMARK(BM_DatasetBuildThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// The same build with the per-shard lookup memo disabled — the delta is
// what IP repetition in the crawl buys the geo-mapping stage.
void BM_DatasetBuildNoMemo(benchmark::State& state) {
  const auto& w = world();
  core::DatasetConfig config = w.pipeline.config().dataset;
  config.lookup_memo_slots = 0;
  const core::DatasetBuilder builder{w.primary, w.secondary, w.mapper, config};
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(w.crawl.samples, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.crawl.samples.size()));
}
BENCHMARK(BM_DatasetBuildNoMemo)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_DatasetFind(benchmark::State& state) {
  const auto& w = world();
  const auto ases = w.dataset.ases();
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.dataset.find(ases[cursor].asn));
    cursor = (cursor + 1) % ases.size();
  }
  state.SetLabel(std::to_string(ases.size()) + " ASes");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatasetFind);

}  // namespace

BENCHMARK_MAIN();
