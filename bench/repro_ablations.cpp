// Design-choice ablations called out in DESIGN.md:
//   1. Fixed 40 km bandwidth vs the paper's Sec. 3.1 AS-dependent rule
//      (bandwidth = max(40 km, per-AS 90th-percentile geo error)).
//   2. The geo-error filter threshold: the paper motivates ~100 km in
//      Sec. 2 but operates with 80 km in Sec. 3.1 — sweep both plus
//      tighter settings.
//   3. The PoP-selection threshold alpha (paper: 0.01).
//   4. Binned-separable KDE vs exact evaluation (numerical error).
#include <iostream>

#include "common.hpp"
#include "core/footprint.hpp"
#include "kde/estimator.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "validate/reference.hpp"
#include "validate/report.hpp"

namespace {

using namespace eyeball;

void bandwidth_rule_ablation(const bench::World& world) {
  bench::print_heading("Ablation 1 — fixed 40 km vs AS-dependent bandwidth (Sec. 3.1)");
  const core::GeoFootprintEstimator estimator;
  util::RunningStats adaptive_bw;
  std::size_t identical = 0;
  std::size_t fewer = 0;
  std::size_t more = 0;
  for (const auto& as : world.dataset.ases()) {
    const double bw = estimator.adaptive_bandwidth_km(as, 40.0);
    adaptive_bw.add(bw);
    const auto fixed_pops = world.pipeline.pop_footprint(as, 40.0).pops.size();
    const auto adaptive_pops = world.pipeline.pop_footprint(as, bw).pops.size();
    if (adaptive_pops == fixed_pops) {
      ++identical;
    } else if (adaptive_pops < fixed_pops) {
      ++fewer;
    } else {
      ++more;
    }
  }
  std::cout << "adaptive bandwidth across ASes: mean "
            << util::fixed(adaptive_bw.mean(), 1) << " km, max "
            << util::fixed(adaptive_bw.max(), 1) << " km\n"
            << "PoP count identical to fixed-40km for " << identical << " ASes, fewer for "
            << fewer << ", more for " << more << "\n"
            << "(the paper's argument: after dropping ASes with p90 error > 80 km,\n"
            << " a fixed 40 km bandwidth is a sound simplification — adaptive\n"
            << " bandwidths stay near the 40 km floor)\n";
}

void error_threshold_ablation(const bench::World& world) {
  bench::print_heading("Ablation 2 — geo-error filter threshold (80 vs 100 km)");
  util::TextTable table{{"threshold", "target ASes", "target peers", "peers dropped"}};
  for (const double threshold : {40.0, 80.0, 100.0, 160.0}) {
    core::DatasetConfig config;
    config.max_geo_error_km = threshold;
    const core::DatasetBuilder builder{world.primary, world.secondary, world.mapper,
                                       config};
    const auto dataset = builder.build(world.crawl.samples);
    table.add_row({util::fixed(threshold, 0) + " km",
                   std::to_string(dataset.stats().final_ases),
                   util::with_commas(static_cast<long long>(dataset.stats().final_peers)),
                   util::with_commas(static_cast<long long>(dataset.stats().high_error))});
  }
  std::cout << '\n' << table;
}

void alpha_ablation(const bench::World& world) {
  bench::print_heading("Ablation 3 — PoP-selection threshold alpha (paper: 0.01)");
  const auto reference = validate::build_reference_dataset(world.eco, world.gaz, 30);
  util::TextTable table{{"alpha", "avg PoPs/AS", "avg precision", "avg recall"}};
  for (const double alpha : {0.001, 0.01, 0.05, 0.2}) {
    core::FootprintConfig config;
    config.alpha = alpha;
    const core::GeoFootprintEstimator estimator{config};
    const core::PopCityMapper mapper{world.gaz};
    util::RunningStats pops_per_as;
    util::RunningStats precision;
    util::RunningStats recall;
    for (const auto& entry : reference) {
      const auto* peers = world.dataset.find(entry.asn);
      if (peers == nullptr) continue;
      const auto pops = mapper.map(estimator.estimate(*peers, 40.0));
      pops_per_as.add(static_cast<double>(pops.pops.size()));
      const auto stats =
          validate::match_pops(entry.locations(), pops.pop_locations(world.gaz), 40.0);
      precision.add(stats.candidate_precision());
      recall.add(stats.reference_recall());
    }
    table.add_row({util::fixed(alpha, 3), util::fixed(pops_per_as.mean(), 1),
                   util::percent(precision.mean()), util::percent(recall.mean())});
  }
  std::cout << '\n' << table
            << "\nReading: smaller alpha admits noise peaks (lower precision);\n"
               "larger alpha drops real secondary PoPs (lower recall).  The\n"
               "paper's 0.01 sits at the knee.\n";
}

void kde_accuracy_ablation() {
  bench::print_heading("Ablation 4 — binned separable KDE vs exact evaluation");
  util::Rng rng{8};
  std::vector<geo::GeoPoint> points;
  const geo::GeoPoint rome{41.9028, 12.4964};
  for (int i = 0; i < 3000; ++i) {
    points.push_back(geo::destination(rome, rng.uniform(0.0, 360.0),
                                      rng.uniform(0.0, 150.0)));
  }
  util::TextTable table{{"cell size", "max |binned-exact| / Dmax", "cells"}};
  for (const double cell : {2.0, 5.0, 10.0, 20.0}) {
    kde::KdeConfig config;
    config.bandwidth_km = 40.0;
    config.cell_km = cell;
    const kde::KernelDensityEstimator estimator{config};
    const auto box = estimator.padded_box(points);
    const auto fast = estimator.estimate(points, box);
    const auto exact = estimator.estimate_exact(points, box);
    double worst = 0.0;
    double dmax = 0.0;
    for (std::size_t i = 0; i < fast.values().size(); ++i) {
      worst = std::max(worst, std::abs(fast.values()[i] - exact.values()[i]));
      dmax = std::max(dmax, exact.values()[i]);
    }
    table.add_row({util::fixed(cell, 0) + " km", util::percent(worst / dmax, 2),
                   std::to_string(fast.cell_count())});
  }
  std::cout << '\n' << table
            << "\nReading: at the default 5 km cells the binned estimate tracks\n"
               "the exact sum-of-Gaussians to a small fraction of the peak.\n";
}

}  // namespace

int main() {
  const auto world = bench::World::generated(0.25, 0.12);
  bandwidth_rule_ablation(world);
  error_threshold_ablation(world);
  alpha_ablation(world);
  kde_accuracy_ablation();
  return 0;
}
