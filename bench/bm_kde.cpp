// Microbenchmarks for the KDE engine: binned separable estimation vs the
// exact evaluator, across sample counts and kernel bandwidths, plus peak
// finding and contour extraction.
#include <benchmark/benchmark.h>

#include "common.hpp"

#include "geo/point.hpp"
#include "kde/contour.hpp"
#include "kde/estimator.hpp"
#include "kde/peaks.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace eyeball;

std::vector<geo::GeoPoint> make_points(std::size_t count, std::uint64_t seed) {
  util::Rng rng{seed};
  const geo::GeoPoint rome{41.9028, 12.4964};
  std::vector<geo::GeoPoint> points;
  points.reserve(count);
  // Three clusters plus a diffuse background, country-scale spread.
  const geo::GeoPoint centers[] = {rome, geo::destination(rome, 0.0, 450.0),
                                   geo::destination(rome, 120.0, 300.0)};
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.bernoulli(0.8)) {
      const auto& center = centers[rng.uniform_index(3)];
      points.push_back(geo::destination(center, rng.uniform(0.0, 360.0),
                                        rng.exponential(1.0 / 15.0)));
    } else {
      points.push_back(geo::destination(rome, rng.uniform(0.0, 360.0),
                                        rng.uniform(0.0, 500.0)));
    }
  }
  return points;
}

void BM_KdeBinned(benchmark::State& state) {
  const auto points = make_points(static_cast<std::size_t>(state.range(0)), 1);
  kde::KdeConfig config;
  config.bandwidth_km = 40.0;
  config.cell_km = 5.0;
  const kde::KernelDensityEstimator estimator{config};
  const auto box = estimator.padded_box(points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(points, box));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdeBinned)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_KdeExact(benchmark::State& state) {
  const auto points = make_points(static_cast<std::size_t>(state.range(0)), 1);
  kde::KdeConfig config;
  config.bandwidth_km = 40.0;
  config.cell_km = 10.0;
  const kde::KernelDensityEstimator estimator{config};
  const auto box = estimator.padded_box(points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_exact(points, box));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdeExact)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

// Threads axis for the parallel convolution passes (1/2/4/hw); results are
// bit-identical across thread counts, so this isolates pure speedup.
void BM_KdeBinnedThreads(benchmark::State& state) {
  const auto points = make_points(1000000, 1);
  kde::KdeConfig config;
  config.bandwidth_km = 40.0;
  config.cell_km = 5.0;
  config.threads = static_cast<std::size_t>(state.range(0));  // 0 = hardware
  const kde::KernelDensityEstimator estimator{config};
  const auto box = estimator.padded_box(points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(points, box));
  }
  const auto effective = config.threads == 0
                             ? eyeball::util::ThreadPool::shared().worker_count()
                             : config.threads;
  state.SetLabel(std::to_string(effective) + " threads");
  state.SetItemsProcessed(state.iterations() * 1000000);
}
BENCHMARK(BM_KdeBinnedThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_KdeExactThreads(benchmark::State& state) {
  const auto points = make_points(2000, 1);
  kde::KdeConfig config;
  config.bandwidth_km = 40.0;
  config.cell_km = 10.0;
  config.threads = static_cast<std::size_t>(state.range(0));  // 0 = hardware
  const kde::KernelDensityEstimator estimator{config};
  const auto box = estimator.padded_box(points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_exact(points, box));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_KdeExactThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_KdeBandwidthSweep(benchmark::State& state) {
  const auto points = make_points(50000, 1);
  kde::KdeConfig config;
  config.bandwidth_km = static_cast<double>(state.range(0));
  config.cell_km = 5.0;
  const kde::KernelDensityEstimator estimator{config};
  const auto box = estimator.padded_box(points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(points, box));
  }
}
BENCHMARK(BM_KdeBandwidthSweep)->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_PeakFinding(benchmark::State& state) {
  const auto points = make_points(100000, 1);
  kde::KdeConfig config;
  config.bandwidth_km = 40.0;
  const kde::KernelDensityEstimator estimator{config};
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde::find_peaks(grid, {0.01, 40.0, true}));
  }
}
BENCHMARK(BM_PeakFinding)->Unit(benchmark::kMillisecond);

void BM_ContourExtraction(benchmark::State& state) {
  const auto points = make_points(100000, 1);
  kde::KdeConfig config;
  config.bandwidth_km = 40.0;
  const kde::KernelDensityEstimator estimator{config};
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde::extract_footprint_relative(grid, 0.01));
  }
}
BENCHMARK(BM_ContourExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

EYEBALL_BENCHMARK_MAIN()
