// Longitudinal crawl demo: why the paper's six-month crawl yields 89.1M
// unique IP addresses while conditioning leaves 48M "users" — dynamic
// address reassignment makes the same subscriber appear under several IPs
// across crawl windows.  Prints cumulative unique IPs per monthly window
// and the underlying distinct-user count, for two DHCP lease regimes.
#include <iostream>

#include "common.hpp"
#include "p2p/churn.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace eyeball;

  bench::print_heading(
      "Sec. 2 mechanics — unique IPs vs users over a six-window crawl");

  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::EcosystemConfig config;
  config.seed = 2009;
  const auto eco = topology::generate_ecosystem(gaz, config.scaled(0.05));

  p2p::CrawlerConfig crawl_config;
  crawl_config.seed = 2009;
  crawl_config.coverage = 0.3;

  util::TextTable table{{"lease survival", "w1", "w2", "w3", "w4", "w5", "w6",
                         "distinct users", "IPs per user"}};
  for (const double survival : {0.9, 0.6, 0.3}) {
    p2p::ChurnConfig churn;
    churn.seed = 2009;
    churn.windows = 6;
    churn.lease_survival = survival;
    const auto result = p2p::longitudinal_crawl(eco, gaz, crawl_config, churn);
    std::vector<std::string> row{util::percent(survival, 0)};
    for (const std::size_t unique : result.cumulative_unique) {
      row.push_back(util::in_thousands(static_cast<long long>(unique)) + "k");
    }
    row.push_back(util::in_thousands(static_cast<long long>(result.distinct_users)) + "k");
    row.push_back(util::fixed(static_cast<double>(result.samples.size()) /
                                  static_cast<double>(result.distinct_users),
                              2));
    table.add_row(std::move(row));
  }
  std::cout << '\n' << table;

  std::cout << "\nReading: cumulative unique IPs keep growing across windows while\n"
               "the user population is fixed; the ratio grows as leases get\n"
               "shorter.  The paper's 89.1M unique IPs over Jan-Jun 2009 against\n"
               "48M conditioned users corresponds to the middle regime.\n";
  return 0;
}
