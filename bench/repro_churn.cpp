// Longitudinal crawl demo: why the paper's six-month crawl yields 89.1M
// unique IP addresses while conditioning leaves 48M "users" — dynamic
// address reassignment makes the same subscriber appear under several IPs
// across crawl windows.  Prints cumulative unique IPs per monthly window
// and the underlying distinct-user count, for two DHCP lease regimes, then
// feeds the middle regime's windows through the streaming conditioning
// path (StreamingDatasetBuilder) and cross-checks it against a one-shot
// rebuild over the deduplicated union.
#include <iostream>
#include <optional>
#include <span>

#include "common.hpp"
#include "core/streaming_dataset.hpp"
#include "p2p/churn.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace eyeball;

  bench::print_heading(
      "Sec. 2 mechanics — unique IPs vs users over a six-window crawl");

  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::EcosystemConfig config;
  config.seed = 2009;
  const auto eco = topology::generate_ecosystem(gaz, config.scaled(0.05));

  p2p::CrawlerConfig crawl_config;
  crawl_config.seed = 2009;
  crawl_config.coverage = 0.3;

  util::TextTable table{{"lease survival", "w1", "w2", "w3", "w4", "w5", "w6",
                         "distinct users", "IPs per user"}};
  p2p::LongitudinalResult middle;  // the 0.6 regime, reused below
  for (const double survival : {0.9, 0.6, 0.3}) {
    p2p::ChurnConfig churn;
    churn.seed = 2009;
    churn.windows = 6;
    churn.lease_survival = survival;
    auto result = p2p::longitudinal_crawl(eco, gaz, crawl_config, churn);
    std::vector<std::string> row{util::percent(survival, 0)};
    for (const std::size_t unique : result.cumulative_unique) {
      row.push_back(util::in_thousands(static_cast<long long>(unique)) + "k");
    }
    row.push_back(util::in_thousands(static_cast<long long>(result.distinct_users)) + "k");
    row.push_back(util::fixed(static_cast<double>(result.samples.size()) /
                                  static_cast<double>(result.distinct_users),
                              2));
    table.add_row(std::move(row));
    if (survival == 0.6) middle = std::move(result);
  }
  std::cout << '\n' << table;

  std::cout << "\nReading: cumulative unique IPs keep growing across windows while\n"
               "the user population is fixed; the ratio grows as leases get\n"
               "shorter.  The paper's 89.1M unique IPs over Jan-Jun 2009 against\n"
               "48M conditioned users corresponds to the middle regime.\n";

  bench::print_heading(
      "Streaming conditioning — per-window ingest of the 60% lease regime");

  // The same pipeline the one-shot benches use, over this ecosystem.
  topology::GroundTruthLocator truth{eco, gaz};
  geodb::SyntheticGeoDatabase primary{"geoip-city-like", truth,
                                      geodb::ErrorModel{}, 0xaaaa};
  geodb::SyntheticGeoDatabase secondary{"ip2location-like", truth,
                                        geodb::ErrorModel{}, 0xbbbb};
  const auto rib = bgp::RibSnapshot::from_ecosystem(eco, 2009);
  const bgp::IpToAsMapper mapper{rib};
  const core::EyeballPipeline pipeline{gaz, primary, secondary, mapper};

  core::StreamingDatasetBuilder stream = pipeline.streaming_builder();
  util::TextTable ingest_table{{"window", "offered", "dup", "admitted",
                                "cumulative unique", "kept ASes", "memo hits"}};
  std::optional<core::TargetDataset> dataset;
  for (std::size_t w = 0; w < middle.windows.size(); ++w) {
    stream.ingest(middle.windows[w]);
    dataset = stream.finalize();
    const core::WindowStats& ws = stream.stats().windows.back();
    ingest_table.add_row(
        {"w" + std::to_string(w + 1),
         util::in_thousands(static_cast<long long>(ws.offered)) + "k",
         util::percent(ws.offered == 0
                           ? 0.0
                           : static_cast<double>(ws.duplicates) /
                                 static_cast<double>(ws.offered),
                       1),
         util::in_thousands(static_cast<long long>(ws.admitted)) + "k",
         util::in_thousands(static_cast<long long>(ws.cumulative_unique)) + "k",
         std::to_string(dataset->ases().size()),
         std::to_string(stream.memo_hits())});
  }
  std::cout << '\n' << ingest_table;

  // Byte-identity sanity: the streamed dataset must equal a one-shot build
  // over the first-observation-deduplicated concatenation of the windows.
  std::vector<p2p::PeerSample> concatenated;
  for (const auto& window : middle.windows) {
    concatenated.insert(concatenated.end(), window.begin(), window.end());
  }
  const auto deduped = core::dedup_first_observation(concatenated);
  const auto oneshot = pipeline.build_dataset(deduped);
  const bool stats_match = oneshot.stats() == dataset->stats();
  bool ases_match = oneshot.ases().size() == dataset->ases().size();
  for (std::size_t i = 0; ases_match && i < oneshot.ases().size(); ++i) {
    ases_match = oneshot.ases()[i].asn == dataset->ases()[i].asn &&
                 oneshot.ases()[i].peers.size() == dataset->ases()[i].peers.size();
  }
  std::cout << "\nByte-identity vs one-shot rebuild over the deduped union: "
            << (stats_match && ases_match ? "OK" : "MISMATCH") << " ("
            << dataset->ases().size() << " ASes, "
            << util::in_thousands(
                   static_cast<long long>(dataset->stats().raw_samples))
            << "k admitted samples)\n";

  std::cout << "\nReading: each ingest pays only for its own window — duplicates\n"
               "from re-observed leases are dropped at the dedup gate, so the\n"
               "persistent geo memos only see cross-app IP reuse (the cumulative\n"
               "hit count above keeps growing across windows).  finalize()\n"
               "re-applies the min-peers filter, so an AS can enter the dataset at\n"
               "the window where its cumulative peer count crosses the threshold.\n";
  return stats_match && ases_match ? 0 : 1;
}
