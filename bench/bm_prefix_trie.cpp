// Microbenchmarks for the longest-prefix-match trie that backs the
// IP -> AS grouping step, across RIB sizes typical of scaled-down and
// full RouteViews-like tables.
#include <benchmark/benchmark.h>

#include "common.hpp"

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace {

using namespace eyeball;

net::PrefixTrie<std::uint32_t> make_trie(std::size_t entries, std::uint64_t seed) {
  util::Rng rng{seed};
  net::PrefixTrie<std::uint32_t> trie;
  std::uint32_t asn = 1;
  while (trie.size() < entries) {
    const auto length = static_cast<int>(12 + rng.uniform_index(13));  // /12../24
    trie.insert(net::Ipv4Prefix{net::Ipv4Address{static_cast<std::uint32_t>(rng())}, length},
                asn++);
  }
  return trie;
}

void BM_TrieInsert(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_trie(entries, 42));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieInsert)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_TrieLongestMatch(benchmark::State& state) {
  const auto trie = make_trie(static_cast<std::size_t>(state.range(0)), 42);
  util::Rng rng{7};
  std::vector<net::Ipv4Address> queries;
  for (int i = 0; i < 4096; ++i) {
    queries.push_back(net::Ipv4Address{static_cast<std::uint32_t>(rng())});
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(queries[cursor++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLongestMatch)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(500000);

void BM_TrieForEach(benchmark::State& state) {
  const auto trie = make_trie(100000, 42);
  for (auto _ : state) {
    std::size_t count = 0;
    trie.for_each([&](const net::Ipv4Prefix&, std::uint32_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_TrieForEach)->Unit(benchmark::kMillisecond);

}  // namespace

EYEBALL_BENCHMARK_MAIN()
