// Reproduces Figure 1 of the paper: KDE user-density surfaces for an
// Italy-wide eyeball AS (the paper's AS 3269, 2.2 M samples) at kernel
// bandwidths 20, 40 and 60 km, plus the Figure 1(b) PoP-level footprint
// list "[Milan (.130), Rome (.122), ...]".
//
// The 3-D surface is rendered as a character-shaded density map; the PoP
// list printed at 40 km is the direct analogue of the paper's list and
// should contain the same cities in a close order with similar densities.
#include <iostream>

#include "common.hpp"
#include "core/pop_mapper.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace eyeball;

  bench::print_heading(
      "Figure 1 — KDE density for an AS3269-like Italy-wide eyeball AS\n"
      "bandwidths 20 / 40 / 60 km (paper: 2.2M samples; this run: scaled crawl)");

  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  bench::World world{bench::build_as3269_world(gaz), 1.0, 3269};
  // Lift the crawl rate so the single AS gets a large sample.
  {
    p2p::CrawlerConfig config;
    config.seed = 3269;
    config.coverage = 1.0;
    config.penetration.set_rates(gazetteer::Continent::kEurope, {0.20, 0.05, 0.05});
    world.crawl = p2p::Crawler{world.eco, world.gaz, config}.crawl();
    world.dataset = world.pipeline.build_dataset(world.crawl.samples);
  }

  const auto* as3269 = world.dataset.find(net::Asn{3269});
  if (as3269 == nullptr) {
    std::cerr << "AS3269-like did not survive conditioning\n";
    return 1;
  }
  std::cout << "\nConditioned samples for AS3269-like: "
            << util::with_commas(static_cast<long long>(as3269->peers.size())) << "\n";

  const core::PopCityMapper mapper{world.gaz};
  for (const double bandwidth : {20.0, 40.0, 60.0}) {
    bench::print_heading("Kernel bandwidth = " + util::fixed(bandwidth, 0) + " km");
    const auto analysis = world.pipeline.analyze(*as3269, bandwidth);
    const auto& grid = analysis.footprint.grid;
    std::cout << "grid: " << grid.rows() << " x " << grid.cols() << " cells of "
              << util::fixed(grid.cell_km(), 1) << " km, density integral "
              << util::fixed(grid.integral(), 3) << "\n";
    std::cout << "peaks above alpha*Dmax: " << analysis.footprint.peaks.size()
              << ", footprint partitions: " << analysis.footprint.contour.partitions.size()
              << ", footprint area: "
              << util::with_commas(
                     static_cast<long long>(analysis.footprint.contour.total_area_km2()))
              << " km^2\n\n";
    std::cout << bench::render_density_map(grid) << "\n";
    std::cout << "PoP-level footprint: " << mapper.describe(analysis.pops) << "\n";
  }

  std::cout << "\nPaper's Figure 1(b) list (bandwidth 40 km) for comparison:\n"
               "  [Milan (.130), Rome (.122), Florence (.061), Venice (.054),\n"
               "   Naples (.051), Turin (.047), Ancona (.027), Catania (.027),\n"
               "   Palermo (.026), Pescara (.017), Bari (.015), Catanzaro (.007),\n"
               "   Cagliari (.005), Sassari (.001)]\n"
               "Reproduction targets: 20 km resolves more, 60 km fewer peaks;\n"
               "the 40 km list recovers the same cities in a close order.\n";
  return 0;
}
