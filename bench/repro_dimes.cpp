// Reproduces the Sec. 5 DIMES comparison: against a traceroute-based PoP
// dataset (the DIMES project), the paper finds 226 common eyeball ASes,
// 7.14 KDE PoPs per AS vs 1.54 DIMES PoPs per AS (bandwidth 40 km), and
// for 80% of ASes the KDE PoPs are a clear superset of the DIMES PoPs.
#include <iostream>

#include "common.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "validate/dimes.hpp"
#include "validate/report.hpp"

int main() {
  using namespace eyeball;

  bench::print_heading("Sec. 5 — Comparison with traceroute-based (DIMES-style) PoPs");

  auto world = bench::World::generated(0.6, 0.06);
  const auto dimes = validate::simulate_dimes(world.eco, world.gaz);
  const auto comparison =
      validate::compare_with_dimes(world.pipeline, world.dataset, dimes, 40.0);

  util::TextTable table{{"metric", "this run", "paper"}};
  table.add_row({"common eyeball ASes", std::to_string(comparison.common_as_count), "226"});
  table.add_row({"KDE PoPs per AS (BW=40km)", util::fixed(comparison.kde_avg_pops, 2),
                 "7.14"});
  table.add_row({"DIMES PoPs per AS", util::fixed(comparison.dimes_avg_pops, 2), "1.54"});
  table.add_row({"ASes where KDE is a superset",
                 util::percent(comparison.superset_fraction), "80%"});
  std::cout << '\n' << table;

  std::cout << "\nReproduction targets: the KDE method sees several times more\n"
               "PoPs than the traceroute view, and covers the traceroute PoPs\n"
               "for a large majority of ASes.\n";
  return 0;
}
