// Reproduces Table 1 of the paper: "Profile of the target eyeball ASes" —
// number of conditioned peers (in thousands) by P2P application and region,
// and number of target ASes by inferred geographic level and region.
//
// The synthetic world is generated at the paper's AS-count profile
// (NA 36/162/129, EU 60/76/292, AS 117/35/134 city/state/country eyeballs);
// absolute peer counts are smaller than the paper's 48 M crawl (the crawl
// coverage is scaled down), but the regional application mix and the
// AS-level distribution are the reproduction targets.
#include <iostream>
#include <map>

#include "common.hpp"
#include "core/classifier.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace eyeball;

constexpr gazetteer::Continent kRegions[] = {
    gazetteer::Continent::kNorthAmerica,
    gazetteer::Continent::kEurope,
    gazetteer::Continent::kAsia,
};

}  // namespace

int main() {
  bench::print_heading(
      "Table 1 — Profile of the target eyeball ASes\n"
      "(paper: 48M peers, 1233 ASes; this run: generated world, scaled crawl)");

  // Full-profile ecosystem.  The customer floor is raised (the paper's
  // >=1000-peer rule already hides ISPs below that radar) and the crawl
  // coverage chosen so that a typical AS clears the 1000-peer cut, keeping
  // the run to about a minute.
  auto world = [] {
    gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
    topology::EcosystemConfig config;
    config.seed = 2009;
    config.min_customers = 100000;
    return bench::World{topology::generate_ecosystem(gaz, config), 0.13, 2009};
  }();

  std::cout << "\nDataset conditioning (paper Sec. 2):\n";
  const auto& stats = world.dataset.stats();
  std::cout << "  raw unique samples        : " << util::with_commas((long long)stats.raw_samples)
            << "\n  dropped, no city record   : " << util::with_commas((long long)stats.missing_geo)
            << "\n  dropped, geo error > 80km : " << util::with_commas((long long)stats.high_error)
            << "\n  dropped, unmapped to AS   : " << util::with_commas((long long)stats.unmapped_as)
            << "\n  dropped, AS < 1000 peers  : " << util::with_commas((long long)stats.peers_in_small_ases)
            << " peers in " << stats.ases_below_min_peers << " ASes"
            << "\n  dropped, AS p90 err > 80km: " << stats.ases_above_p90_error << " ASes"
            << "\n  TARGET DATASET            : " << util::with_commas((long long)stats.final_peers)
            << " peers across " << stats.final_ases << " eyeball ASes\n";

  // Classify every target AS and attribute peers to (region, app).
  const core::AsClassifier classifier{world.gaz};
  std::map<gazetteer::Continent, std::map<p2p::App, std::size_t>> peers_by_region;
  std::map<gazetteer::Continent, std::map<topology::AsLevel, std::size_t>> ases_by_region;
  for (const auto& as : world.dataset.ases()) {
    const auto classification = classifier.classify(as);
    ++ases_by_region[classification.continent][classification.level];
    for (const auto app : p2p::kAllApps) {
      peers_by_region[classification.continent][app] += as.count_for(app);
    }
  }

  util::TextTable table{{"Region", "Kad(k)", "Gnu(k)", "BT(k)", "City", "State", "Country"}};
  for (const auto region : kRegions) {
    auto& peers = peers_by_region[region];
    auto& ases = ases_by_region[region];
    table.add_row({std::string{gazetteer::to_code(region)},
                   util::in_thousands((long long)peers[p2p::App::kKad]),
                   util::in_thousands((long long)peers[p2p::App::kGnutella]),
                   util::in_thousands((long long)peers[p2p::App::kBitTorrent]),
                   std::to_string(ases[topology::AsLevel::kCity]),
                   std::to_string(ases[topology::AsLevel::kState]),
                   std::to_string(ases[topology::AsLevel::kCountry])});
  }
  std::cout << '\n' << table;

  std::cout << "\nPaper's Table 1 for comparison (counts in thousands / #ASes):\n"
               "  NA: Kad 1218, Gnu 8984, BT 1761 | city 36,  state 162, country 129\n"
               "  EU: Kad 18004, Gnu 2519, BT 2529 | city 60,  state 76,  country 292\n"
               "  AS: Kad 17865, Gnu 1606, BT 1016 | city 117, state 35,  country 134\n"
               "Reproduction targets: Gnutella dominates NA, Kad dominates EU/AS;\n"
               "AS-level mix per region tracks the generated profile.\n";
  return 0;
}
