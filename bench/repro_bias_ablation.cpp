// Ablation for Sec. 4.3 (sampling bias — left as future work in the paper,
// quantified here): inject mild bias (a PoP's sampling rate scaled down)
// and significant bias (PoP blackouts) into the crawler and measure the
// effect on PoP recall and on the accuracy of the per-PoP density scores.
#include <iostream>

#include "common.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace eyeball;

struct BiasOutcome {
  double pop_recall = 0.0;       // fraction of true major PoPs discovered
  double score_error = 0.0;      // mean |inferred share - true share| on found PoPs
  std::size_t ases = 0;
};

BiasOutcome evaluate(const bench::World& world) {
  BiasOutcome outcome;
  std::size_t found = 0;
  std::size_t total = 0;
  util::RunningStats score_error;
  for (const auto& as : world.dataset.ases()) {
    const auto pops = world.pipeline.pop_footprint(as, 40.0);
    const auto& true_as = world.eco.at(as.asn);
    ++outcome.ases;
    for (const auto& pop : true_as.pops) {
      if (pop.transit_only || pop.customer_share < 0.05) continue;
      ++total;
      if (pops.has_city(pop.city)) {
        ++found;
        for (const auto& entry : pops.pops) {
          if (entry.city == pop.city) {
            score_error.add(std::abs(entry.score - pop.customer_share));
          }
        }
      }
    }
  }
  outcome.pop_recall =
      total == 0 ? 0.0 : static_cast<double>(found) / static_cast<double>(total);
  outcome.score_error = score_error.mean();
  return outcome;
}

}  // namespace

int main() {
  bench::print_heading(
      "Sec. 4.3 ablation — sampling bias vs PoP discovery (paper: future work)");

  struct Case {
    const char* label;
    p2p::BiasConfig bias;
  };
  const Case cases[] = {
      {"no bias", {}},
      {"mild bias (30% of PoPs undersampled)", {0.3, 0.0}},
      {"mild bias (all PoPs undersampled)", {1.0, 0.0}},
      {"significant bias (15% PoP blackouts)", {0.0, 0.15}},
      {"significant bias (40% PoP blackouts)", {0.0, 0.40}},
  };

  util::TextTable table{{"crawl bias", "target ASes", "major-PoP recall",
                         "mean density-score error"}};
  for (const auto& test_case : cases) {
    const auto world = bench::World::generated(0.25, 0.12, 2009, test_case.bias);
    const auto outcome = evaluate(world);
    table.add_row({test_case.label, std::to_string(outcome.ases),
                   util::percent(outcome.pop_recall),
                   util::fixed(outcome.score_error, 3)});
  }
  std::cout << '\n' << table;

  std::cout << "\nReading: mild bias mostly distorts the density value attached to\n"
               "a PoP (the paper's 'inaccurate density') while blackouts remove\n"
               "PoPs from the inferred footprint entirely ('significant bias').\n";
  return 0;
}
