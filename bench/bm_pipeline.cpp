// End-to-end pipeline microbenchmarks: geo-database lookups, dataset
// conditioning throughput, per-AS footprint/PoP analysis and the geodesic
// primitives in the hot paths.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/classifier.hpp"
#include "util/rng.hpp"
#include "gazetteer/gazetteer.hpp"

namespace {

using namespace eyeball;

const bench::World& world() {
  static const bench::World instance = bench::World::generated(0.05, 0.1);
  return instance;
}

void BM_GeoDbLookup(benchmark::State& state) {
  const auto& w = world();
  const auto& samples = w.crawl.samples;
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.primary.lookup(samples[cursor].ip));
    cursor = (cursor + 1) % samples.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeoDbLookup);

void BM_DatasetBuild(benchmark::State& state) {
  const auto& w = world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pipeline.build_dataset(w.crawl.samples));
  }
  state.SetItemsProcessed(state.iterations() * w.crawl.samples.size());
}
BENCHMARK(BM_DatasetBuild)->Unit(benchmark::kMillisecond);

void BM_AnalyzeAs(benchmark::State& state) {
  const auto& w = world();
  // Largest AS in the dataset = worst case.
  const core::AsPeerSet* biggest = nullptr;
  for (const auto& as : w.dataset.ases()) {
    if (biggest == nullptr || as.peers.size() > biggest->peers.size()) biggest = &as;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pipeline.analyze(*biggest));
  }
  state.SetLabel(std::to_string(biggest->peers.size()) + " peers");
  state.SetItemsProcessed(state.iterations() * biggest->peers.size());
}
BENCHMARK(BM_AnalyzeAs)->Unit(benchmark::kMillisecond);

void BM_PopFootprintBandwidth(benchmark::State& state) {
  const auto& w = world();
  const core::AsPeerSet* biggest = nullptr;
  for (const auto& as : w.dataset.ases()) {
    if (biggest == nullptr || as.peers.size() > biggest->peers.size()) biggest = &as;
  }
  const auto bandwidth = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pipeline.pop_footprint(*biggest, bandwidth));
  }
}
BENCHMARK(BM_PopFootprintBandwidth)->Arg(10)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_Classify(benchmark::State& state) {
  const auto& w = world();
  const core::AsClassifier classifier{w.gaz};
  const auto& as = w.dataset.ases()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(as));
  }
  state.SetItemsProcessed(state.iterations() * as.peers.size());
}
BENCHMARK(BM_Classify)->Unit(benchmark::kMillisecond);

void BM_HaversineDistance(benchmark::State& state) {
  const geo::GeoPoint a{41.9, 12.5};
  const geo::GeoPoint b{45.46, 9.19};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::distance_km(a, b));
  }
}
BENCHMARK(BM_HaversineDistance);

void BM_ApproxDistance(benchmark::State& state) {
  const geo::GeoPoint a{41.9, 12.5};
  const geo::GeoPoint b{45.46, 9.19};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::approx_distance_km(a, b));
  }
}
BENCHMARK(BM_ApproxDistance);

void BM_NearestCity(benchmark::State& state) {
  const auto& w = world();
  util::Rng rng{3};
  std::vector<geo::GeoPoint> queries;
  for (int i = 0; i < 1024; ++i) {
    queries.push_back({rng.uniform(30.0, 60.0), rng.uniform(-10.0, 40.0)});
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.gaz.nearest_city(queries[cursor++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NearestCity);

}  // namespace

BENCHMARK_MAIN();
