// End-to-end pipeline microbenchmarks: geo-database lookups, dataset
// conditioning throughput, per-AS footprint/PoP analysis and the geodesic
// primitives in the hot paths.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/classifier.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "gazetteer/gazetteer.hpp"

namespace {

using namespace eyeball;

const bench::World& world() {
  static const bench::World instance = bench::World::generated(0.05, 0.1);
  return instance;
}

void BM_GeoDbLookup(benchmark::State& state) {
  const auto& w = world();
  const auto& samples = w.crawl.samples;
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.primary.lookup(samples[cursor].ip));
    cursor = (cursor + 1) % samples.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeoDbLookup);

void BM_DatasetBuild(benchmark::State& state) {
  const auto& w = world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pipeline.build_dataset(w.crawl.samples));
  }
  state.SetItemsProcessed(state.iterations() * w.crawl.samples.size());
}
BENCHMARK(BM_DatasetBuild)->Unit(benchmark::kMillisecond);

void BM_AnalyzeAs(benchmark::State& state) {
  const auto& w = world();
  // Largest AS in the dataset = worst case.
  const core::AsPeerSet* biggest = nullptr;
  for (const auto& as : w.dataset.ases()) {
    if (biggest == nullptr || as.peers.size() > biggest->peers.size()) biggest = &as;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pipeline.analyze(*biggest));
  }
  state.SetLabel(std::to_string(biggest->peers.size()) + " peers");
  state.SetItemsProcessed(state.iterations() * biggest->peers.size());
}
BENCHMARK(BM_AnalyzeAs)->Unit(benchmark::kMillisecond);

/// Synthetic workload for the parallel engine: `count` eyeball-AS peer sets,
/// each a few city-scale clusters somewhere in Europe.  Built directly (no
/// crawl) so the bench isolates the analyze fan-out.
std::vector<core::AsPeerSet> synthetic_ases(std::size_t count, std::size_t peers_each) {
  util::Rng rng{42};
  std::vector<core::AsPeerSet> out;
  out.reserve(count);
  for (std::size_t a = 0; a < count; ++a) {
    core::AsPeerSet as;
    as.asn = net::Asn{static_cast<std::uint32_t>(10000 + a)};
    std::vector<geo::GeoPoint> centers;
    const std::size_t clusters = 1 + rng.uniform_index(4);
    for (std::size_t c = 0; c < clusters; ++c) {
      centers.push_back({rng.uniform(36.0, 55.0), rng.uniform(-5.0, 25.0)});
    }
    as.peers.reserve(peers_each);
    for (std::size_t i = 0; i < peers_each; ++i) {
      core::PeerRecord rec;
      rec.ip = net::Ipv4Address{static_cast<std::uint32_t>(rng())};
      const auto& center = centers[rng.uniform_index(centers.size())];
      rec.location = geo::destination(center, rng.uniform(0.0, 360.0),
                                      rng.exponential(1.0 / 20.0));
      rec.geo_error_km = rng.uniform(0.0, 40.0);
      as.peers.push_back(rec);
    }
    out.push_back(std::move(as));
  }
  return out;
}

// The acceptance workload for the parallel per-AS engine: 200 synthetic
// ASes analyzed end-to-end (KDE -> contour -> peaks -> PoP mapping) with a
// threads axis (1/2/4/hardware).  Output is bit-identical across thread
// counts; only wall clock moves.
void BM_PipelineAnalyzeAllThreads(benchmark::State& state) {
  const auto& w = world();
  static const auto ases = synthetic_ases(200, 400);
  const auto threads = static_cast<std::size_t>(state.range(0));  // 0 = hardware
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pipeline.analyze_all(ases, threads));
  }
  const auto effective =
      threads == 0 ? util::ThreadPool::shared().worker_count() : threads;
  state.SetLabel(std::to_string(effective) + " threads, " +
                 std::to_string(ases.size()) + " ASes");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(ases.size()));
}
BENCHMARK(BM_PipelineAnalyzeAllThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_PopFootprintBandwidth(benchmark::State& state) {
  const auto& w = world();
  const core::AsPeerSet* biggest = nullptr;
  for (const auto& as : w.dataset.ases()) {
    if (biggest == nullptr || as.peers.size() > biggest->peers.size()) biggest = &as;
  }
  const auto bandwidth = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pipeline.pop_footprint(*biggest, bandwidth));
  }
}
BENCHMARK(BM_PopFootprintBandwidth)->Arg(10)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_Classify(benchmark::State& state) {
  const auto& w = world();
  const core::AsClassifier classifier{w.gaz};
  const auto& as = w.dataset.ases()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(as));
  }
  state.SetItemsProcessed(state.iterations() * as.peers.size());
}
BENCHMARK(BM_Classify)->Unit(benchmark::kMillisecond);

void BM_HaversineDistance(benchmark::State& state) {
  const geo::GeoPoint a{41.9, 12.5};
  const geo::GeoPoint b{45.46, 9.19};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::distance_km(a, b));
  }
}
BENCHMARK(BM_HaversineDistance);

void BM_ApproxDistance(benchmark::State& state) {
  const geo::GeoPoint a{41.9, 12.5};
  const geo::GeoPoint b{45.46, 9.19};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::approx_distance_km(a, b));
  }
}
BENCHMARK(BM_ApproxDistance);

void BM_NearestCity(benchmark::State& state) {
  const auto& w = world();
  util::Rng rng{3};
  std::vector<geo::GeoPoint> queries;
  for (int i = 0; i < 1024; ++i) {
    queries.push_back({rng.uniform(30.0, 60.0), rng.uniform(-10.0, 40.0)});
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.gaz.nearest_city(queries[cursor++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NearestCity);

}  // namespace

EYEBALL_BENCHMARK_MAIN()
