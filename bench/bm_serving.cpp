// Query-storm benchmark for the serving layer (serve/service.hpp): reader
// threads hammer point and batch queries against an EyeballService while
// the writer thread live-ingests crawl windows and publishes epochs.  The
// committed baseline lives in BENCH_serving.json (see README "Serving");
// regenerate with
//
//     ./build/bench/bm_serving BENCH_serving.json
//
// Unlike the google-benchmark microbenches, this is a custom driver: the
// quantities of interest are sustained queries/sec and tail latency
// (p50/p99) under concurrent publication, which need per-query timing and
// a custom JSON schema (validated by tools/check_bench_schema.py).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "serve/service.hpp"
#include "util/file.hpp"
#include "util/format.hpp"

namespace {

using namespace eyeball;

constexpr std::size_t kWindows = 6;
constexpr std::size_t kReaders = 2;
/// Each reader keeps querying while the writer is live, and at least this
/// many point queries overall — the storm totals millions of answers.
constexpr std::size_t kMinPointQueriesPerReader = 1'000'000;
/// One batch query (kBatchSize ASNs) every kBatchEvery point queries.
constexpr std::size_t kBatchEvery = 16;
constexpr std::size_t kBatchSize = 16;
/// Latency is sampled (every kSampleEvery-th query) with a hard cap, so an
/// arbitrarily long storm cannot exhaust memory.
constexpr std::size_t kSampleEvery = 4;
constexpr std::size_t kMaxSamples = 2'000'000;

/// The crawl split into contiguous "monthly" windows (bm_dataset's split).
std::vector<std::span<const p2p::PeerSample>> crawl_windows(
    std::span<const p2p::PeerSample> all) {
  const std::size_t chunk = (all.size() + kWindows - 1) / kWindows;
  std::vector<std::span<const p2p::PeerSample>> out;
  for (std::size_t lo = 0; lo < all.size(); lo += chunk) {
    out.push_back(all.subspan(lo, std::min(chunk, all.size() - lo)));
  }
  return out;
}

struct ReaderTally {
  std::uint64_t point_queries = 0;
  std::uint64_t point_hits = 0;
  std::uint64_t batch_queries = 0;
  std::uint64_t batch_answers = 0;
  /// Distinct epochs this reader received answers from (live-overlap proof).
  std::uint64_t first_epoch = 0;
  std::uint64_t last_epoch = 0;
  std::vector<std::uint32_t> point_ns;
  std::vector<std::uint32_t> batch_ns;
  double seconds = 0.0;
};

/// Sorts in place and reads the q-quantile (nearest-rank).
[[nodiscard]] std::uint32_t percentile_ns(std::vector<std::uint32_t>& ns, double q) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(ns.size() - 1));
  return ns[rank];
}

ReaderTally run_reader(const serve::EyeballService& service,
                       std::span<const net::Asn> probe,
                       const std::atomic<bool>& writer_done) {
  using clock = std::chrono::steady_clock;
  ReaderTally tally;
  tally.point_ns.reserve(kMaxSamples);
  tally.batch_ns.reserve(kMaxSamples / kBatchEvery + 1);
  std::vector<net::Asn> batch_asns{
      probe.begin(),
      probe.begin() + static_cast<std::ptrdiff_t>(std::min(kBatchSize, probe.size()))};
  const auto start = clock::now();
  std::size_t i = 0;
  while (!writer_done.load(std::memory_order_acquire) ||
         tally.point_queries < kMinPointQueriesPerReader) {
    const net::Asn asn = probe[i % probe.size()];
    const auto t0 = clock::now();
    const auto ref = service.query(asn);
    const auto t1 = clock::now();
    ++tally.point_queries;
    if (ref) ++tally.point_hits;
    const std::uint64_t epoch = ref.epoch();
    if (epoch != 0) {
      if (tally.first_epoch == 0) tally.first_epoch = epoch;
      tally.last_epoch = epoch;
    }
    if (i % kSampleEvery == 0 && tally.point_ns.size() < kMaxSamples) {
      tally.point_ns.push_back(static_cast<std::uint32_t>(std::min<std::int64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
          0xFFFFFFFFll)));
    }
    if (i % kBatchEvery == 0) {
      const auto b0 = clock::now();
      const auto batch = service.query_batch(batch_asns);
      const auto b1 = clock::now();
      ++tally.batch_queries;
      tally.batch_answers += batch.analyses.size();
      if (tally.batch_ns.size() < kMaxSamples) {
        tally.batch_ns.push_back(static_cast<std::uint32_t>(std::min<std::int64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b1 - b0).count(),
            0xFFFFFFFFll)));
      }
      // Cede the core periodically so the storm cannot starve the writer's
      // pool threads on small machines (QPS is measured per query, not per
      // wall-second of spinning).
      std::this_thread::yield();
    }
    ++i;
  }
  tally.seconds = std::chrono::duration<double>(clock::now() - start).count();
  return tally;
}

[[nodiscard]] std::string json_entry(const std::string& name, std::uint64_t queries,
                                     double qps, std::uint32_t p50, std::uint32_t p99,
                                     std::uint32_t worst) {
  std::string out = "    {\n";
  out += "      \"name\": \"" + name + "\",\n";
  out += "      \"queries\": " + std::to_string(queries) + ",\n";
  out += "      \"qps\": " + util::fixed(qps, 1) + ",\n";
  out += "      \"p50_ns\": " + std::to_string(p50) + ",\n";
  out += "      \"p99_ns\": " + std::to_string(p99) + ",\n";
  out += "      \"max_ns\": " + std::to_string(worst) + "\n";
  out += "    }";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serving.json";

  const bench::World& world = [] () -> const bench::World& {
    static const bench::World instance = bench::World::generated(0.05, 0.2);
    return instance;
  }();
  const auto windows = crawl_windows(world.crawl.samples);

  serve::EyeballService service{world.pipeline};

  // Warm-up epoch: the storm races live publishes, not an empty service.
  service.ingest(windows[0]);
  auto first = service.publish();
  std::vector<net::Asn> probe;
  for (const auto& as : first->dataset().ases()) probe.push_back(as.asn);
  probe.push_back(net::Asn{0xFFFFFFFFu});  // one guaranteed miss in rotation
  std::printf("epoch 1 published: %zu ASes served, %zu probe ASNs\n",
              first->dataset().ases().size(), probe.size());
  first.reset();

  std::atomic<bool> writer_done{false};
  std::vector<ReaderTally> tallies(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      tallies[r] = run_reader(service, probe, writer_done);
    });
  }

  // The writer live-ingests the remaining windows, publishing each.
  using clock = std::chrono::steady_clock;
  const auto w0 = clock::now();
  for (std::size_t i = 1; i < windows.size(); ++i) {
    service.ingest(windows[i]);
    (void)service.publish();
  }
  const double publish_seconds = std::chrono::duration<double>(clock::now() - w0).count();
  writer_done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Merge reader tallies.
  std::uint64_t point_queries = 0;
  std::uint64_t batch_queries = 0;
  std::uint64_t batch_answers = 0;
  double reader_seconds = 0.0;
  std::uint64_t first_epoch = 0;
  std::uint64_t last_epoch = 0;
  std::vector<std::uint32_t> point_ns;
  std::vector<std::uint32_t> batch_ns;
  for (auto& tally : tallies) {
    point_queries += tally.point_queries;
    batch_queries += tally.batch_queries;
    batch_answers += tally.batch_answers;
    reader_seconds += tally.seconds;
    first_epoch = first_epoch == 0 ? tally.first_epoch
                                   : std::min(first_epoch, tally.first_epoch);
    last_epoch = std::max(last_epoch, tally.last_epoch);
    point_ns.insert(point_ns.end(), tally.point_ns.begin(), tally.point_ns.end());
    batch_ns.insert(batch_ns.end(), tally.batch_ns.begin(), tally.batch_ns.end());
  }
  const double point_qps =
      reader_seconds == 0.0 ? 0.0 : static_cast<double>(point_queries) / reader_seconds;
  const double batch_qps =
      reader_seconds == 0.0 ? 0.0 : static_cast<double>(batch_queries) / reader_seconds;

  const std::uint32_t point_p50 = percentile_ns(point_ns, 0.50);
  const std::uint32_t point_p99 = percentile_ns(point_ns, 0.99);
  const std::uint32_t batch_p50 = percentile_ns(batch_ns, 0.50);
  const std::uint32_t batch_p99 = percentile_ns(batch_ns, 0.99);

  std::printf("point: %llu queries, %.0f qps, p50 %u ns, p99 %u ns\n",
              static_cast<unsigned long long>(point_queries), point_qps, point_p50,
              point_p99);
  std::printf("batch(%zu): %llu queries, %.0f qps, p50 %u ns, p99 %u ns\n", kBatchSize,
              static_cast<unsigned long long>(batch_queries), batch_qps, batch_p50,
              batch_p99);
  std::printf("epochs answered from: %llu..%llu of %llu published (%.1fs publishing)\n",
              static_cast<unsigned long long>(first_epoch),
              static_cast<unsigned long long>(last_epoch),
              static_cast<unsigned long long>(service.epoch()), publish_seconds);

  char date[32] = "unknown";
  // eyeball-lint: allow(nondet-seed): report timestamp for the JSON context, not randomness
  const std::time_t now = std::time(nullptr);
  if (std::tm utc{}; gmtime_r(&now, &utc) != nullptr) {
    (void)std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S+00:00", &utc);
  }

  std::string json = "{\n  \"context\": {\n";
  json += "    \"date\": \"" + std::string{date} + "\",\n";
  json += "    \"eyeball_build_type\": \"" + std::string{bench::kBuildType} + "\",\n";
  json += "    \"num_cpus\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "    \"readers\": " + std::to_string(kReaders) + ",\n";
  json += "    \"windows\": " + std::to_string(windows.size()) + ",\n";
  json += "    \"epochs_published\": " + std::to_string(service.epoch()) + ",\n";
  json += "    \"first_answer_epoch\": " + std::to_string(first_epoch) + ",\n";
  json += "    \"last_answer_epoch\": " + std::to_string(last_epoch) + ",\n";
  json += "    \"publish_seconds\": " + util::fixed(publish_seconds, 3) + ",\n";
  json += "    \"batch_size\": " + std::to_string(kBatchSize) + "\n";
  json += "  },\n  \"benchmarks\": [\n";
  json += json_entry("ServingPointQuery", point_queries, point_qps, point_p50,
                     point_p99, point_ns.empty() ? 0 : point_ns.back());
  json += ",\n";
  json += json_entry("ServingBatchQuery", batch_queries, batch_qps, batch_p50,
                     batch_p99, batch_ns.empty() ? 0 : batch_ns.back());
  json += "\n  ]\n}\n";

  const auto bytes = std::as_bytes(std::span<const char>{json.data(), json.size()});
  if (const auto status =
          util::atomic_write_file(util::local_filesystem(), out_path, bytes);
      !status.ok()) {
    std::printf("FAILED to write %s: %s\n", out_path.c_str(),
                status.message().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
