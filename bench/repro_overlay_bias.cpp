// Ablation: overlay-crawl sampling vs the calibrated rate-based crawler
// (paper §2 "Sampling end-users" + §4.3 sampling bias).
//
// Builds the actual overlays (Kad DHT sweep, Gnutella ultrapeer BFS,
// BitTorrent tracker scrapes) over the same ground-truth user population
// and compares the coverage and the structural bias each crawl imposes —
// e.g. a BitTorrent crawl of the top swarms under-samples users who only
// join unpopular torrents, which is a (AS, PoP)-correlated bias when
// content tastes cluster regionally.
#include <iostream>

#include "common.hpp"
#include "p2p/overlay.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace eyeball;

  bench::print_heading("Overlay-crawl ablation — coverage and bias by application");

  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::EcosystemConfig config;
  config.seed = 2009;
  const auto eco = topology::generate_ecosystem(gaz, config.scaled(0.08));

  p2p::OverlayPopulationConfig population_config;
  population_config.seed = 2009;
  // Flat, scaled-down penetration keeps each overlay at a few hundred
  // thousand nodes so the bench runs in seconds.
  for (const auto continent :
       {gazetteer::Continent::kNorthAmerica, gazetteer::Continent::kEurope,
        gazetteer::Continent::kAsia}) {
    population_config.penetration.set_rates(continent, {0.01, 0.01, 0.01});
  }

  util::TextTable table{{"application", "members", "online", "crawl", "discovered",
                         "coverage of members"}};
  // "discovered" counts offline nodes referenced by online neighbours too,
  // like a real crawl log; coverage is therefore relative to all members.
  const auto add_row = [&](const char* app, const p2p::OverlayPopulation& population,
                           const char* crawl, std::size_t discovered) {
    table.add_row({app, util::with_commas((long long)population.nodes().size()),
                   util::with_commas((long long)population.online_count()), crawl,
                   util::with_commas((long long)discovered),
                   util::percent(static_cast<double>(discovered) /
                                 static_cast<double>(population.nodes().size()))});
  };

  {
    const p2p::OverlayPopulation population{eco, p2p::App::kKad, population_config};
    const p2p::KadNetwork kad{population, 1};
    add_row("Kad", population, "id sweep (n/2 zones)",
            kad.crawl(population.nodes().size() / 2).size());
    add_row("Kad", population, "id sweep (1k zones)", kad.crawl(1000).size());
  }
  {
    const p2p::OverlayPopulation population{eco, p2p::App::kGnutella, population_config};
    const p2p::GnutellaNetwork gnutella{population, 7};
    add_row("Gnutella", population, "BFS, 5 bootstraps", gnutella.crawl(5).size());
    add_row("Gnutella", population, "BFS, 1 bootstrap", gnutella.crawl(1).size());
  }
  {
    const p2p::OverlayPopulation population{eco, p2p::App::kBitTorrent, population_config};
    const p2p::SwarmNetwork swarms{population, 9, population.nodes().size() / 50};
    add_row("BitTorrent", population, "scrape all swarms x 200",
            swarms.crawl(population.nodes().size() / 50, 200).size());
    add_row("BitTorrent", population, "top 5% swarms x 200",
            swarms.crawl(population.nodes().size() / 1000, 200).size());
  }
  std::cout << '\n' << table;

  std::cout << "\nReading: the Kad sweep is near-exhaustive (the paper's dominant\n"
               "source, 89.1M IPs), a well-bootstrapped Gnutella BFS covers the\n"
               "giant ultrapeer component, and tracker scraping covers only the\n"
               "popular-swarm membership — the structural origin of per-\n"
               "application sampling bias (paper Sec. 4.3).\n";
  return 0;
}
