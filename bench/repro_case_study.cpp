// Reproduces the Sec. 6 case study: AS connectivity at the "edge".
//
// AS8234 (RAI) is, by its geo-footprint, a simple Rome-only city-level
// eyeball AS (3,000 P2P users all mapped to Rome) — so one would expect one
// or two regional upstreams and, if any peering, the local Rome IXP
// (NaMEX).  The actual connectivity is far richer: five upstream providers
// (Infostrada, Fastweb, Easynet, Colt, BT-Italia — two of them with global
// reach) and remote peering at the Milan IXP (MIX) with GARR, ASDASD and
// ITGate, while absent from NaMEX.  The claims are validated with
// simulated traceroutes, as in the paper.
#include <iostream>

#include "common.hpp"
#include "connectivity/as_graph.hpp"
#include "connectivity/case_study.hpp"
#include "connectivity/rai_scenario.hpp"
#include "connectivity/traceroute.hpp"
#include "core/pop_mapper.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace eyeball;

  bench::print_heading("Sec. 6 — Case study: AS8234 (RAI), from geography to connectivity");

  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  auto scenario = connectivity::build_rai_scenario(gaz);

  // Crawl the scenario so the geography side comes from the pipeline, not
  // from the generator's ground truth.
  bench::World world{std::move(scenario.ecosystem), 1.0, 8234};
  {
    p2p::CrawlerConfig config;
    config.seed = 8234;
    config.coverage = 1.0;
    config.penetration.set_rates(gazetteer::Continent::kEurope, {0.5, 0.25, 0.25});
    world.crawl = p2p::Crawler{world.eco, world.gaz, config}.crawl();
    world.dataset = world.pipeline.build_dataset(world.crawl.samples);
  }

  std::cout << "\n--- Geography (inferred by the pipeline) ---\n";
  const auto* rai_peers = world.dataset.find(scenario.rai);
  if (rai_peers == nullptr) {
    std::cerr << "RAI did not survive dataset conditioning\n";
    return 1;
  }
  const auto analysis = world.pipeline.analyze(*rai_peers);
  const core::PopCityMapper mapper{world.gaz};
  std::cout << "AS8234 peers in target dataset : "
            << util::with_commas(static_cast<long long>(rai_peers->peers.size()))
            << " (paper: 3,000, all mapped to Rome)\n"
            << "inferred level                 : "
            << topology::to_string(analysis.classification.level) << " ("
            << analysis.classification.dominant_region << ", share "
            << util::percent(analysis.classification.dominant_share) << ")\n"
            << "PoP-level footprint            : " << mapper.describe(analysis.pops) << "\n";

  std::cout << "\n--- Expected connectivity from geography ---\n"
               "A city-level eyeball: 1-2 regional/country-wide upstream providers\n"
               "(e.g. Infostrada, with PoPs across Italy incl. Rome) and peering,\n"
               "if at all, at the local Rome IXP NaMEX.\n";

  const auto report = connectivity::analyze_connectivity(world.eco, world.gaz, scenario.rai);
  std::cout << "\n--- Actual connectivity (relationship + IXP data) ---\n";
  util::TextTable upstreams{{"upstream", "ASN", "scope"}};
  for (const auto& upstream : report.upstreams) {
    upstreams.add_row({upstream.name, std::to_string(net::value_of(upstream.asn)),
                       std::string{topology::to_string(upstream.level)} +
                           (upstream.global_reach ? " (global reach)" : "")});
  }
  std::cout << upstreams;
  for (const auto& membership : report.memberships) {
    std::cout << "IXP membership: " << membership.name << " ("
              << world.gaz.city(membership.city).name << ", "
              << (membership.local ? "local" : "REMOTE") << "), peers there:";
    for (const auto peer : membership.peers_there) {
      std::cout << ' ' << world.eco.at(peer).name;
    }
    std::cout << '\n';
  }
  for (const auto& skipped : report.skipped_local_ixps) {
    std::cout << "NOT a member of local IXP: " << skipped << '\n';
  }
  std::cout << "\nDeviations from the geography-based expectation:\n";
  for (const auto& surprise : report.surprises) {
    std::cout << "  * " << surprise << '\n';
  }

  std::cout << "\n--- Traceroute validation (as in the paper) ---\n";
  const connectivity::AsGraph graph{world.eco};
  const connectivity::TracerouteSimulator sim{graph, world.rib};
  const auto& rai_as = world.eco.at(scenario.rai);
  const auto inbound = sim.trace(scenario.vantage, rai_as.pops[0].prefixes[0].first());
  if (inbound) {
    std::cout << "vantage (DE) -> RAI host     : "
              << connectivity::TracerouteSimulator::format_path(inbound->route) << '\n';
  }
  for (const auto peer : {scenario.garr, scenario.asdasd, scenario.itgate}) {
    const auto route = sim.trace_as(scenario.rai, peer);
    if (route) {
      std::cout << "RAI -> " << world.eco.at(peer).name << " ("
                << (route->route_class == connectivity::RouteClass::kPeer
                        ? "direct peering at MIX"
                        : "via transit")
                << "): " << connectivity::TracerouteSimulator::format_path(*route) << '\n';
    }
  }
  const auto upstream_route = sim.trace_as(scenario.rai, scenario.colt);
  if (upstream_route) {
    std::cout << "RAI -> Colt (provider)       : "
              << connectivity::TracerouteSimulator::format_path(*upstream_route) << '\n';
  }

  std::cout << "\nPaper's findings reproduced: five upstreams (two with global\n"
               "reach), remote peering at MIX with GARR/ASDASD/ITGate, absence\n"
               "from the local NaMEX — a 'bewildering web' invisible to the\n"
               "geography-only view.\n";
  return 0;
}
