// Shared scaffolding for the reproduction benches: world construction,
// an AS3269-like Italian eyeball scenario (Figure 1), and text rendering
// helpers.  Every bench binary runs with no arguments, prints the paper's
// rows/series, and exits.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "bgp/rib.hpp"
#include "core/pipeline.hpp"
#include "gazetteer/gazetteer.hpp"
#include "geodb/synthetic_db.hpp"
#include "p2p/crawler.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"
#include "topology/ip_allocator.hpp"

namespace eyeball::bench {

/// Build flavor the bench binary was compiled as.  Stamped into every
/// benchmark JSON context as "eyeball_build_type" so
/// tools/check_bench_schema.py can reject baselines recorded from a debug
/// build (assertion-laden timings are not baselines).  NDEBUG tracks the
/// repo's own code: Release / RelWithDebInfo define it, Debug does not.
#ifdef NDEBUG
inline constexpr const char* kBuildType = "release";
#else
inline constexpr const char* kBuildType = "debug";
#endif

/// End-to-end world: ecosystem + databases + RIB + pipeline + crawl.
struct World {
  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::AsEcosystem eco;
  topology::GroundTruthLocator truth;
  geodb::SyntheticGeoDatabase primary;
  geodb::SyntheticGeoDatabase secondary;
  bgp::RibSnapshot rib;
  bgp::IpToAsMapper mapper;
  core::EyeballPipeline pipeline;
  p2p::CrawlResult crawl;
  core::TargetDataset dataset;

  // Members reference each other (truth -> eco, pipeline -> databases), so
  // a World must never be moved or copied; rely on guaranteed copy elision
  // when returning from `generated`.
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  World(topology::AsEcosystem ecosystem, double coverage, std::uint64_t seed,
        p2p::BiasConfig bias = {})
      : eco(std::move(ecosystem)),
        truth(eco, gaz),
        primary("geoip-city-like", truth, geodb::ErrorModel{}, 0xaaaa),
        secondary("ip2location-like", truth, geodb::ErrorModel{}, 0xbbbb),
        rib(bgp::RibSnapshot::from_ecosystem(eco, seed)),
        mapper(rib),
        pipeline(gaz, primary, secondary, mapper),
        crawl([&] {
          p2p::CrawlerConfig config;
          config.seed = seed;
          config.coverage = coverage;
          config.bias = bias;
          return p2p::Crawler{eco, gaz, config}.crawl();
        }()),
        dataset(pipeline.build_dataset(crawl.samples)) {}

  /// Generated world at the given ecosystem scale.
  static World generated(double scale, double coverage, std::uint64_t seed = 2009,
                         p2p::BiasConfig bias = {}) {
    gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
    topology::EcosystemConfig config;
    config.seed = seed;
    return World{topology::generate_ecosystem(gaz, config.scaled(scale)), coverage, seed,
                 bias};
  }
};

/// Builds an Italy-wide eyeball AS shaped like the paper's AS 3269 (Telecom
/// Italia): PoPs at the 14 cities of the paper's Figure 1(b) PoP list with
/// customer shares proportional to the published densities, plus a light
/// tail over the rest of Italy.
[[nodiscard]] inline topology::AsEcosystem build_as3269_world(
    const gazetteer::Gazetteer& gaz) {
  struct CityShare {
    const char* name;
    double share;  // the paper's Figure 1(b) density value
  };
  // [Milan (.130), Rome (.122), Florence (.061), Venice (.054),
  //  Naples (.051), Turin (.047), Ancona (.027), Catania (.027),
  //  Palermo (.026), Pescara (.017), Bari (.015), Catanzaro (.007),
  //  Cagliari (.005), Sassari (.001)]
  constexpr CityShare kPaperPops[] = {
      {"Milan", 0.130},   {"Rome", 0.122},     {"Florence", 0.061},
      {"Venice", 0.054},  {"Naples", 0.051},   {"Turin", 0.047},
      {"Ancona", 0.027},  {"Catania", 0.027},  {"Palermo", 0.026},
      {"Pescara", 0.017}, {"Bari", 0.015},     {"Catanzaro", 0.007},
      {"Cagliari", 0.005}, {"Sassari", 0.001},
  };

  topology::Ipv4SpaceAllocator allocator;
  topology::AutonomousSystem as;
  as.asn = net::Asn{3269};
  as.name = "AS3269-like (Italy-wide eyeball)";
  as.role = topology::AsRole::kEyeball;
  as.level = topology::AsLevel::kCountry;
  as.country_code = "IT";
  as.continent = gazetteer::Continent::kEurope;
  as.customers = 2200000;  // the paper evaluates AS3269 on 2.2 M samples

  // The paper's published densities sum to 0.589; the remainder is peak
  // shoulders and sub-alpha dust.  We place 85% of the customer mass on the
  // named cities (proportional to the published densities — the KDE spread
  // recreates the shoulders) and scatter a thin 15% tail over the rest of
  // Italy.
  double paper_total = 0.0;
  for (const auto& [name, share] : kPaperPops) paper_total += share;
  constexpr double kNamedMass = 0.85;
  for (const auto& [name, share] : kPaperPops) {
    const auto city = gaz.find_by_name(name, "IT");
    if (!city) continue;
    topology::PopSite pop;
    pop.city = *city;
    pop.customer_share = kNamedMass * share / paper_total;
    as.pops.push_back(std::move(pop));
  }
  const double rest = 1.0 - kNamedMass;
  std::vector<gazetteer::CityId> others;
  double other_population = 0.0;
  for (const auto id : gaz.cities_in_country("IT")) {
    if (gaz.city(id).is_satellite) continue;  // PoPs live in real cities
    bool named = false;
    for (const auto& pop : as.pops) {
      if (pop.city == id) named = true;
    }
    if (!named) {
      others.push_back(id);
      other_population += static_cast<double>(gaz.city(id).population);
    }
  }
  for (const auto id : others) {
    topology::PopSite pop;
    pop.city = id;
    pop.customer_share =
        rest * static_cast<double>(gaz.city(id).population) / other_population;
    as.pops.push_back(std::move(pop));
  }
  // Allocate address space per PoP.
  for (auto& pop : as.pops) {
    const auto need = std::max<std::uint64_t>(
        1024, static_cast<std::uint64_t>(pop.customer_share *
                                         static_cast<double>(as.customers) * 1.5));
    std::uint64_t remaining = need;
    while (remaining > 0) {
      const auto block =
          allocator.allocate(std::max(12, topology::Ipv4SpaceAllocator::length_for(remaining)));
      pop.prefixes.push_back(block);
      remaining -= std::min<std::uint64_t>(remaining, block.size());
    }
  }

  // A transit provider so the RIB has realistic paths.
  topology::AutonomousSystem transit;
  transit.asn = net::Asn{1};
  transit.name = "transit-IT";
  transit.role = topology::AsRole::kTier1;
  transit.level = topology::AsLevel::kGlobal;
  transit.continent = gazetteer::Continent::kEurope;
  {
    topology::PopSite pop;
    pop.city = *gaz.find_by_name("Milan", "IT");
    pop.transit_only = true;
    pop.prefixes.push_back(allocator.allocate(22));
    transit.pops.push_back(std::move(pop));
  }

  std::vector<topology::AsRelationship> rels{
      {net::Asn{3269}, net::Asn{1}, topology::RelationshipType::kCustomerProvider, {}}};
  return topology::AsEcosystem{{transit, as}, {}, std::move(rels)};
}

/// Coarse character rendering of a density grid (the terminal stand-in for
/// the paper's 3-D surface plots).
[[nodiscard]] inline std::string render_density_map(const kde::DensityGrid& grid,
                                                    std::size_t max_cols = 72) {
  static constexpr char kShades[] = " .:-=+*#%@";
  const auto max = grid.max_cell();
  if (!max) return "(empty density)\n";
  const std::size_t step = std::max<std::size_t>(1, grid.cols() / max_cols);
  std::string out;
  for (std::size_t r = grid.rows(); r-- > 0;) {
    if ((grid.rows() - 1 - r) % step != 0) continue;
    for (std::size_t c = 0; c < grid.cols(); c += step) {
      // Sample the max over the step x step block so thin peaks stay visible.
      double v = 0.0;
      for (std::size_t rr = r; rr < std::min(grid.rows(), r + step); ++rr) {
        for (std::size_t cc = c; cc < std::min(grid.cols(), c + step); ++cc) {
          v = std::max(v, grid.value(rr, cc));
        }
      }
      const double level = v / max->value;
      const auto shade = static_cast<std::size_t>(level * (std::size(kShades) - 2));
      out += kShades[std::min(shade, std::size(kShades) - 2)];
    }
    out += '\n';
  }
  return out;
}

inline void print_heading(const std::string& title) {
  std::cout << '\n' << std::string(76, '=') << '\n' << title << '\n'
            << std::string(76, '=') << '\n';
}

}  // namespace eyeball::bench

/// Drop-in replacement for BENCHMARK_MAIN() used by the bm_* binaries:
/// identical run behavior, plus the eyeball_build_type context stamp (see
/// kBuildType above).  Requires <benchmark/benchmark.h> at the use site.
#define EYEBALL_BENCHMARK_MAIN()                                          \
  int main(int argc, char** argv) {                                       \
    benchmark::AddCustomContext("eyeball_build_type",                     \
                                eyeball::bench::kBuildType);              \
    benchmark::Initialize(&argc, argv);                                   \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    benchmark::RunSpecifiedBenchmarks();                                  \
    benchmark::Shutdown();                                                \
    return 0;                                                             \
  }
