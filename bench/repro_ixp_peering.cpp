// Quantifies the paper's §1/§6 qualitative claim that "the world of peering
// relationships at the edge is highly diverse and complex: even simple
// eyeball ASes tend to peer very actively at local and remote IXPs,
// especially in Europe, and also maintain rich upstream connectivity".
//
// Prints per-continent eyeball peering/multi-homing profiles and the
// largest IXPs of the generated world.
#include <iostream>

#include "common.hpp"
#include "connectivity/ixp_analysis.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace eyeball;

  bench::print_heading("Sec. 6 context — IXP peering and multi-homing at the edge");

  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::EcosystemConfig config;
  config.seed = 2009;
  const auto eco = topology::generate_ecosystem(gaz, config);
  const auto report = connectivity::analyze_peering(eco, gaz);

  util::TextTable continents{{"region", "eyeballs", "IXPs", "local mem.", "remote mem.",
                              "avg peers/AS", "avg providers/AS", ">2 providers"}};
  for (const auto& profile : report.continents) {
    continents.add_row({std::string{gazetteer::to_code(profile.continent)},
                        std::to_string(profile.eyeballs), std::to_string(profile.ixps),
                        std::to_string(profile.local_memberships),
                        std::to_string(profile.remote_memberships),
                        util::fixed(profile.avg_peers_per_eyeball, 2),
                        util::fixed(profile.avg_providers_per_eyeball, 2),
                        util::percent(profile.multihomed_fraction)});
  }
  std::cout << '\n' << continents;

  std::cout << "\nLargest IXPs by membership:\n";
  util::TextTable ixps{{"IXP", "city", "members", "eyeball members", "peerings"}};
  for (std::size_t i = 0; i < std::min<std::size_t>(12, report.ixps.size()); ++i) {
    const auto& summary = report.ixps[i];
    ixps.add_row({summary.name, std::string{gaz.city(summary.city).name},
                  std::to_string(summary.members),
                  std::to_string(summary.eyeball_members),
                  std::to_string(summary.peerings)});
  }
  std::cout << ixps;

  std::cout << "\nReproduction targets: Europe shows the densest IXP fabric and\n"
               "the highest remote-membership share; a substantial fraction of\n"
               "eyeballs everywhere is multi-homed beyond the 1-2 providers a\n"
               "geography-based view would predict.\n";
  return 0;
}
