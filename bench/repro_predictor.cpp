// The paper's §7 future-work question, quantified: how well does geography
// alone predict an eyeball AS's connectivity?
//
// For every target AS, the geo-footprint pipeline infers the PoP cities;
// the predictor proposes providers (transits overlapping the footprint) and
// IXPs (near the footprint); predictions are scored against the ground
// truth.  The punchline matches the paper's case study: geography recovers
// the "natural" providers and the local IXPs, but a substantial share of
// real connectivity — global carriers without local overlap, remote
// peerings — is structurally unpredictable from user locations.
#include <iostream>

#include "common.hpp"
#include "connectivity/predictor.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace eyeball;

  bench::print_heading("Sec. 7 — predicting connectivity from geography alone");

  auto world = bench::World::generated(0.25, 0.12);
  const connectivity::ConnectivityPredictor predictor{world.eco, world.gaz};

  util::RunningStats provider_recall;
  util::RunningStats provider_recall_top2;
  util::RunningStats ixp_recall;
  std::size_t invisible_providers = 0;
  std::size_t invisible_ixps = 0;
  std::size_t total_providers = 0;
  std::size_t total_ixps = 0;

  for (const auto& as : world.dataset.ases()) {
    const auto pops = world.pipeline.pop_footprint(as, 40.0);
    if (pops.pops.empty()) continue;
    const auto prediction = predictor.predict(pops);
    const auto score = predictor.score(as.asn, prediction);
    provider_recall.add(score.provider_recall);
    provider_recall_top2.add(score.provider_recall_top2);
    invisible_providers += score.unpredictable_providers;
    total_providers += world.eco.providers_of(as.asn).size();
    const auto memberships = world.eco.ixps_of(as.asn);
    if (!memberships.empty()) {
      ixp_recall.add(score.ixp_recall);
      invisible_ixps += score.unpredictable_ixps;
      total_ixps += memberships.size();
    }
  }

  util::TextTable table{{"metric", "value"}};
  table.add_row({"ASes analyzed", std::to_string(provider_recall.count())});
  table.add_row({"provider recall (any rank)", util::percent(provider_recall.mean())});
  table.add_row({"provider recall (top-2 'expected' providers)",
                 util::percent(provider_recall_top2.mean())});
  table.add_row({"IXP membership recall", util::percent(ixp_recall.mean())});
  table.add_row({"providers invisible to geography",
                 util::percent(static_cast<double>(invisible_providers) /
                               static_cast<double>(std::max<std::size_t>(1, total_providers)))});
  table.add_row({"IXP memberships invisible to geography (remote peering)",
                 util::percent(static_cast<double>(invisible_ixps) /
                               static_cast<double>(std::max<std::size_t>(1, total_ixps)))});
  std::cout << '\n' << table;

  std::cout << "\nReading: the 'natural' picture (top-2 overlapping transits,\n"
               "local IXPs) captures only part of the truth; the residual is the\n"
               "paper's 'bewildering web of real-world peering relationships'\n"
               "that geography cannot see — its closing argument for fusing\n"
               "edge-based and BGP/traceroute-based measurement.\n";
  return 0;
}
