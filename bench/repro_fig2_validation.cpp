// Reproduces Figure 2 and the Sec. 5 scalars of the paper:
//   (a) CDF over ASes of the percentage of ground-truth PoPs matched by the
//       KDE method, at kernel bandwidths 10 / 40 / 80 km;
//   (b) CDF over ASes of the percentage of KDE PoPs that match a
//       ground-truth PoP, same sweep;
//   plus the averages the paper quotes: 31.9 / 13.6 / 7.3 identified PoPs
//   per AS at 10 / 40 / 80 km against 43.7 reported PoPs per reference AS,
//   and the perfect-match fractions (paper: 60% at 80 km, 41% at 40 km,
//   5% at 10 km).
#include <iostream>

#include "common.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "validate/reference.hpp"
#include "validate/report.hpp"

int main() {
  using namespace eyeball;

  bench::print_heading(
      "Figure 2 — Validation against published PoP lists (45-AS reference)");

  auto world = bench::World::generated(0.6, 0.06);
  std::cout << "world: " << world.eco.ases().size() << " ASes, target dataset "
            << world.dataset.stats().final_ases << " ASes / "
            << util::with_commas(static_cast<long long>(world.dataset.stats().final_peers))
            << " peers\n";

  const auto reference = validate::build_reference_dataset(world.eco, world.gaz, 45);
  const std::vector<double> bandwidths{10.0, 40.0, 80.0};
  const auto report = validate::validate_against_reference(world.pipeline, world.dataset,
                                                           reference, bandwidths);

  std::cout << "reference dataset: " << report.reference_as_count
            << " ASes with published PoP lists, avg "
            << util::fixed(report.avg_reference_pops_per_as, 1)
            << " reported PoPs/AS (paper: 45 ASes, 43.7 PoPs/AS)\n";

  util::TextTable scalars{{"bandwidth", "avg KDE PoPs/AS", "perfect-match ASes",
                           "paper avg PoPs/AS", "paper perfect"}};
  const char* paper_pops[] = {"31.9", "13.6", "7.3"};
  const char* paper_perfect[] = {"5%", "41%", "60%"};
  for (std::size_t i = 0; i < report.sweeps.size(); ++i) {
    const auto& sweep = report.sweeps[i];
    scalars.add_row({util::fixed(sweep.bandwidth_km, 0) + " km",
                     util::fixed(sweep.avg_pops_per_as, 1),
                     util::percent(sweep.perfect_precision_fraction),
                     paper_pops[i], paper_perfect[i]});
  }
  std::cout << '\n' << scalars;

  const auto print_cdf = [&](const char* title, bool recall) {
    bench::print_heading(title);
    util::TextTable table{{"% matched", "BW=10km", "BW=40km", "BW=80km"}};
    for (int pct = 0; pct <= 100; pct += 10) {
      std::vector<std::string> row{std::to_string(pct) + "%"};
      for (const auto& sweep : report.sweeps) {
        const auto& samples = recall ? sweep.reference_recall : sweep.candidate_precision;
        const util::EmpiricalCdf cdf{std::vector<double>{samples.begin(), samples.end()}};
        row.push_back(util::percent(cdf.at(pct / 100.0 + 1e-12)));
      }
      table.add_row(std::move(row));
    }
    std::cout << table;

    util::AsciiChart chart{60, 14};
    for (const auto& sweep : report.sweeps) {
      const util::EmpiricalCdf cdf{std::vector<double>{
          (recall ? sweep.reference_recall : sweep.candidate_precision).begin(),
          (recall ? sweep.reference_recall : sweep.candidate_precision).end()}};
      std::vector<double> xs;
      std::vector<double> ys;
      for (int pct = 0; pct <= 100; pct += 5) {
        xs.push_back(pct);
        ys.push_back(cdf.at(pct / 100.0 + 1e-12) * 100.0);
      }
      chart.add_series("BW=" + util::fixed(sweep.bandwidth_km, 0) + "km", std::move(xs),
                       std::move(ys));
    }
    chart.set_x_label(recall ? "% of ground-truth PoPs matched"
                             : "% of KDE PoPs matched");
    chart.set_y_label("% of ASes (CDF)");
    std::cout << '\n' << chart.render();
  };

  print_cdf("Figure 2(a) — CDF of % ground-truth PoPs found per AS", true);
  print_cdf("Figure 2(b) — CDF of % KDE PoPs matching ground truth per AS", false);

  std::cout << "\nReproduction targets: smaller bandwidth matches more of the\n"
               "reference (Fig 2a curves shift right as BW drops) while larger\n"
               "bandwidth yields fewer but more reliable PoPs (Fig 2b: the\n"
               "perfect-match fraction grows sharply with bandwidth).\n";
  return 0;
}
