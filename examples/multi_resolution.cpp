// Multi-resolution footprint explorer (paper Sec. 3.1 + the Sec. 5
// future-work refinement): shows how the kernel bandwidth acts as a tuning
// knob between city-, region- and country-level views of one AS, and runs
// the multi-bandwidth PoP refiner that splits PoPs a coarse kernel merges.
//
//   ./build/examples/multi_resolution
#include <iostream>

#include "bgp/rib.hpp"
#include "core/multi_bandwidth.hpp"
#include "core/pipeline.hpp"
#include "gazetteer/gazetteer.hpp"
#include "geodb/synthetic_db.hpp"
#include "p2p/crawler.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"
#include "util/format.hpp"

int main() {
  using namespace eyeball;

  const auto gaz = gazetteer::Gazetteer::builtin();
  topology::EcosystemConfig eco_config;
  eco_config.seed = 11;
  const auto eco = topology::generate_ecosystem(gaz, eco_config.scaled(0.08));
  const topology::GroundTruthLocator truth{eco, gaz};
  const geodb::SyntheticGeoDatabase primary{"geoip-city", truth, {}, 0xaaaa};
  const geodb::SyntheticGeoDatabase secondary{"ip2location", truth, {}, 0xbbbb};
  const auto rib = bgp::RibSnapshot::from_ecosystem(eco);
  const bgp::IpToAsMapper mapper{rib};
  const core::EyeballPipeline pipeline{gaz, primary, secondary, mapper};

  p2p::CrawlerConfig crawl_config;
  crawl_config.coverage = 0.3;
  const auto crawl = p2p::Crawler{eco, gaz, crawl_config}.crawl();
  const auto dataset = pipeline.build_dataset(crawl.samples);

  // Pick a country-level AS with several PoPs.
  const core::AsPeerSet* target = nullptr;
  for (const auto& as : dataset.ases()) {
    if (eco.at(as.asn).service_pop_count() >= 5) {
      target = &as;
      break;
    }
  }
  if (target == nullptr) {
    std::cerr << "no multi-PoP AS found; increase the ecosystem scale\n";
    return 1;
  }
  const auto& true_as = eco.at(target->asn);
  std::cout << "subject: " << net::to_string(target->asn) << " (" << true_as.name << ", "
            << util::with_commas((long long)target->peers.size()) << " peers, "
            << true_as.service_pop_count() << " true service PoPs)\n\n";

  const core::PopCityMapper pop_mapper{gaz};
  std::cout << "--- bandwidth as a resolution knob ---\n";
  for (const double bandwidth : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    const auto analysis = pipeline.analyze(*target, bandwidth);
    std::cout << "bw " << util::fixed(bandwidth, 0) << " km: "
              << analysis.footprint.peaks.size() << " peaks, "
              << analysis.footprint.contour.partitions.size() << " footprint partition(s), "
              << analysis.pops.pops.size()
              << " PoP cities: " << pop_mapper.describe(analysis.pops) << "\n";
  }

  std::cout << "\n--- Sec. 3.1 AS-dependent bandwidth rule ---\n";
  const core::GeoFootprintEstimator estimator;
  const double adaptive = estimator.adaptive_bandwidth_km(*target, 40.0);
  std::cout << "90th-percentile geo error of this AS => bandwidth "
            << util::fixed(adaptive, 1) << " km (floor 40 km)\n";

  std::cout << "\n--- Sec. 5 future work: multi-bandwidth refinement ---\n";
  const core::MultiBandwidthRefiner refiner{gaz, estimator};
  const auto refined = refiner.refine(*target);
  std::cout << "coarse 40 km PoPs refined with a 15 km pass: " << refined.splits
            << " PoP(s) split, result: " << pop_mapper.describe(refined.pops) << "\n";
  return 0;
}
