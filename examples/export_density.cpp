// Export example: writes the KDE density surface and footprint boundary of
// one AS to files that external tools can render — CSV (gnuplot/pandas),
// PGM (any image viewer) and GeoJSON (any web map) — the artifacts behind
// a Figure-1-style visualization.
//
//   ./build/examples/export_density
//   -> density.csv, density.pgm, footprint.geojson in the working directory
#include <fstream>
#include <iostream>

#include "bgp/rib.hpp"
#include "core/pipeline.hpp"
#include "gazetteer/gazetteer.hpp"
#include "geodb/synthetic_db.hpp"
#include "kde/export.hpp"
#include "p2p/crawler.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"

int main() {
  using namespace eyeball;

  const auto gaz = gazetteer::Gazetteer::builtin();
  topology::EcosystemConfig eco_config;
  eco_config.seed = 31;
  const auto eco = topology::generate_ecosystem(gaz, eco_config.scaled(0.05));
  const topology::GroundTruthLocator truth{eco, gaz};
  const geodb::SyntheticGeoDatabase primary{"geoip", truth, {}, 1};
  const geodb::SyntheticGeoDatabase secondary{"ip2l", truth, {}, 2};
  const auto rib = bgp::RibSnapshot::from_ecosystem(eco);
  const bgp::IpToAsMapper mapper{rib};
  const core::EyeballPipeline pipeline{gaz, primary, secondary, mapper};

  p2p::CrawlerConfig crawl_config;
  crawl_config.coverage = 0.3;
  const auto crawl = p2p::Crawler{eco, gaz, crawl_config}.crawl();
  const auto dataset = pipeline.build_dataset(crawl.samples);
  if (dataset.ases().empty()) {
    std::cerr << "no target ASes\n";
    return 1;
  }

  // Pick the AS with the most PoPs for an interesting surface.
  const core::AsPeerSet* subject = &dataset.ases()[0];
  for (const auto& as : dataset.ases()) {
    if (eco.at(as.asn).service_pop_count() >
        eco.at(subject->asn).service_pop_count()) {
      subject = &as;
    }
  }
  const auto analysis = pipeline.analyze(*subject);
  std::cout << "exporting " << net::to_string(subject->asn) << " ("
            << subject->peers.size() << " peers, "
            << analysis.footprint.peaks.size() << " peaks)\n";

  {
    std::ofstream csv{"density.csv"};
    csv << kde::to_csv(analysis.footprint.grid,
                       analysis.footprint.grid.max_cell()->value * 1e-4);
  }
  {
    std::ofstream pgm{"density.pgm"};
    pgm << kde::to_pgm(analysis.footprint.grid);
  }
  {
    std::ofstream geojson{"footprint.geojson"};
    geojson << kde::boundary_to_geojson(analysis.footprint.contour);
  }
  std::cout << "wrote density.csv, density.pgm, footprint.geojson\n";
  return 0;
}
