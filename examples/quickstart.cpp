// Quickstart: the whole method in ~60 lines.
//
// Builds a small synthetic world, crawls its P2P users, conditions the
// dataset exactly as the paper's Sec. 2 pipeline does, and prints the
// geo-footprint, level classification and PoP-level footprint of the
// largest eyeball AS.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <algorithm>
#include <iostream>

#include "bgp/rib.hpp"
#include "core/pipeline.hpp"
#include "gazetteer/gazetteer.hpp"
#include "geodb/synthetic_db.hpp"
#include "p2p/crawler.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"
#include "util/format.hpp"

int main() {
  using namespace eyeball;

  // 1. A world to measure: gazetteer + synthetic AS ecosystem.
  const auto gaz = gazetteer::Gazetteer::builtin();
  topology::EcosystemConfig eco_config;
  eco_config.seed = 1;
  const auto eco = topology::generate_ecosystem(gaz, eco_config.scaled(0.05));

  // 2. The data sources the paper uses: two independent geo-IP databases
  //    and a BGP RIB for IP -> AS mapping.
  const topology::GroundTruthLocator truth{eco, gaz};
  const geodb::SyntheticGeoDatabase maxmind_like{"geoip-city", truth, {}, 0xaaaa};
  const geodb::SyntheticGeoDatabase ip2location_like{"ip2location", truth, {}, 0xbbbb};
  const auto rib = bgp::RibSnapshot::from_ecosystem(eco);
  const bgp::IpToAsMapper mapper{rib};

  // 3. Crawl P2P users (Kad + BitTorrent + Gnutella).
  p2p::CrawlerConfig crawl_config;
  crawl_config.coverage = 0.3;
  const auto crawl = p2p::Crawler{eco, gaz, crawl_config}.crawl();
  std::cout << "crawled " << util::with_commas((long long)crawl.samples.size())
            << " unique peer IPs\n";

  // 4. Condition the dataset and analyze.
  const core::EyeballPipeline pipeline{gaz, maxmind_like, ip2location_like, mapper};
  const auto dataset = pipeline.build_dataset(crawl.samples);
  std::cout << "target dataset: " << dataset.stats().final_ases << " eyeball ASes, "
            << util::with_commas((long long)dataset.stats().final_peers) << " peers\n";

  const auto& biggest = *std::max_element(
      dataset.ases().begin(), dataset.ases().end(),
      [](const auto& a, const auto& b) { return a.peers.size() < b.peers.size(); });
  const auto analysis = pipeline.analyze(biggest);

  std::cout << "\n" << net::to_string(biggest.asn) << " ("
            << util::with_commas((long long)biggest.peers.size()) << " peers)\n"
            << "  level        : " << topology::to_string(analysis.classification.level)
            << " (" << analysis.classification.dominant_region << ", "
            << util::percent(analysis.classification.dominant_share) << " of peers)\n"
            << "  footprint    : "
            << analysis.footprint.contour.partitions.size() << " partition(s), "
            << util::with_commas(
                   (long long)analysis.footprint.contour.total_area_km2())
            << " km^2 at the 1%-of-peak contour\n"
            << "  PoP footprint: "
            << core::PopCityMapper{gaz}.describe(analysis.pops) << "\n";
  return 0;
}
