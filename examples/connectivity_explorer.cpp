// Connectivity explorer (paper Sec. 6): walks the RAI scenario — prints the
// AS-level routing table view from RAI's perspective, traceroutes between
// every pair of named ASes, and the expected-vs-actual connectivity report
// for each eyeball in the scenario.
//
//   ./build/examples/connectivity_explorer
#include <iostream>

#include "bgp/rib.hpp"
#include "connectivity/as_graph.hpp"
#include "connectivity/case_study.hpp"
#include "connectivity/rai_scenario.hpp"
#include "connectivity/traceroute.hpp"
#include "gazetteer/gazetteer.hpp"
#include "util/table.hpp"

int main() {
  using namespace eyeball;

  const auto gaz = gazetteer::Gazetteer::builtin();
  const auto scenario = connectivity::build_rai_scenario(gaz);
  const auto& eco = scenario.ecosystem;
  const connectivity::AsGraph graph{eco};
  const auto rib = bgp::RibSnapshot::from_ecosystem(eco);
  const connectivity::TracerouteSimulator sim{graph, rib};

  std::cout << "=== The Italian mini-internet of the paper's Sec. 6 ===\n\n";
  util::TextTable roster{{"AS", "name", "role", "level", "cone", "providers", "peers"}};
  for (const auto& as : eco.ases()) {
    roster.add_row({net::to_string(as.asn), as.name,
                    std::string{topology::to_string(as.role)},
                    std::string{topology::to_string(as.level)},
                    std::to_string(graph.customer_cone_size(as.asn)),
                    std::to_string(eco.providers_of(as.asn).size()),
                    std::to_string(eco.peers_of(as.asn).size())});
  }
  std::cout << roster << '\n';

  std::cout << "=== IXPs ===\n";
  for (const auto& ixp : eco.ixps()) {
    std::cout << ixp.name << " (" << gaz.city(ixp.city).name << "):";
    for (const auto member : ixp.members) std::cout << ' ' << eco.at(member).name;
    std::cout << '\n';
  }

  std::cout << "\n=== AS-level traceroutes from RAI ===\n";
  for (const auto& as : eco.ases()) {
    if (as.asn == scenario.rai) continue;
    const auto route = sim.trace_as(scenario.rai, as.asn);
    if (!route) {
      std::cout << "RAI -> " << as.name << ": unreachable\n";
      continue;
    }
    const char* kind = route->route_class == connectivity::RouteClass::kCustomer
                           ? "customer"
                       : route->route_class == connectivity::RouteClass::kPeer ? "peer"
                                                                               : "provider";
    std::cout << "RAI -> " << as.name << " [" << kind
              << " route]: " << connectivity::TracerouteSimulator::format_path(*route)
              << '\n';
  }

  std::cout << "\n=== Expected vs actual connectivity, per eyeball ===\n";
  for (const auto& as : eco.ases()) {
    if (as.role != topology::AsRole::kEyeball) continue;
    const auto report = connectivity::analyze_connectivity(eco, gaz, as.asn);
    std::cout << '\n' << as.name << " (" << topology::to_string(report.level)
              << "-level, home " << gaz.city(report.home_city).name << "): "
              << report.upstreams.size() << " upstream(s), " << report.memberships.size()
              << " IXP membership(s)\n";
    if (report.surprises.empty()) {
      std::cout << "  connectivity matches the geography-based expectation\n";
    }
    for (const auto& surprise : report.surprises) {
      std::cout << "  surprise: " << surprise << '\n';
    }
  }
  return 0;
}
