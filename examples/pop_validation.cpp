// PoP validation walkthrough (paper Sec. 5): picks a few reference ASes with
// "published" PoP lists, shows the inferred vs published PoPs side by side,
// and reports the match statistics at the three kernel bandwidths.
//
//   ./build/examples/pop_validation
#include <iostream>

#include "bgp/rib.hpp"
#include "core/pipeline.hpp"
#include "gazetteer/gazetteer.hpp"
#include "geodb/synthetic_db.hpp"
#include "p2p/crawler.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"
#include "util/format.hpp"
#include "validate/matching.hpp"
#include "validate/reference.hpp"

int main() {
  using namespace eyeball;

  const auto gaz = gazetteer::Gazetteer::builtin();
  topology::EcosystemConfig eco_config;
  eco_config.seed = 55;
  const auto eco = topology::generate_ecosystem(gaz, eco_config.scaled(0.1));
  const topology::GroundTruthLocator truth{eco, gaz};
  const geodb::SyntheticGeoDatabase primary{"geoip-city", truth, {}, 0xaaaa};
  const geodb::SyntheticGeoDatabase secondary{"ip2location", truth, {}, 0xbbbb};
  const auto rib = bgp::RibSnapshot::from_ecosystem(eco);
  const bgp::IpToAsMapper mapper{rib};
  const core::EyeballPipeline pipeline{gaz, primary, secondary, mapper};

  p2p::CrawlerConfig crawl_config;
  crawl_config.coverage = 0.25;
  const auto crawl = p2p::Crawler{eco, gaz, crawl_config}.crawl();
  const auto dataset = pipeline.build_dataset(crawl.samples);

  const auto reference = validate::build_reference_dataset(eco, gaz, 6);
  const core::PopCityMapper pop_mapper{gaz};

  for (const auto& entry : reference) {
    const auto* peers = dataset.find(entry.asn);
    if (peers == nullptr) continue;

    std::cout << "\n=== " << net::to_string(entry.asn) << " ("
              << eco.at(entry.asn).name << ", "
              << util::with_commas((long long)peers->peers.size()) << " peers) ===\n";
    std::cout << "published PoP list (" << entry.pops.size() << " entries):";
    for (const auto& pop : entry.pops) {
      std::cout << ' ' << gaz.city(pop.city).name
                << (pop.kind == validate::PublishedPop::Kind::kTransitOnly ? "[transit]"
                    : pop.kind == validate::PublishedPop::Kind::kAccessPoint ? "[ap]"
                                                                             : "");
    }
    std::cout << '\n';

    for (const double bandwidth : {10.0, 40.0, 80.0}) {
      const auto pops = pipeline.pop_footprint(*peers, bandwidth);
      const auto inferred = pops.pop_locations(gaz);
      const auto stats = validate::match_pops(entry.locations(), inferred, 40.0);
      std::cout << "  bw=" << util::fixed(bandwidth, 0) << "km: inferred "
                << inferred.size() << " PoPs, recall "
                << util::percent(stats.reference_recall()) << ", precision "
                << util::percent(stats.candidate_precision())
                << (stats.perfect_precision() ? " (perfect)" : "") << "  "
                << pop_mapper.describe(pops) << '\n';
    }
  }
  std::cout << "\nLegend: [transit] interconnection-only PoP, [ap] access point\n"
               "listed as a PoP by the ISP (both are publication-noise modes the\n"
               "paper identifies in its reference data).\n";
  return 0;
}
