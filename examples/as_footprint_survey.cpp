// Survey of eyeball-AS geo-footprints: runs the full pipeline over every
// target AS in a generated world and prints, per AS, the inferred level,
// footprint area, PoP count and top PoP cities — the kind of per-AS view
// the paper's Sections 3-4 build toward.
//
//   ./build/examples/as_footprint_survey
#include <algorithm>
#include <iostream>

#include "bgp/rib.hpp"
#include "core/pipeline.hpp"
#include "gazetteer/gazetteer.hpp"
#include "geodb/synthetic_db.hpp"
#include "p2p/crawler.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace eyeball;

  const auto gaz = gazetteer::Gazetteer::builtin();
  topology::EcosystemConfig eco_config;
  eco_config.seed = 7;
  const auto eco = topology::generate_ecosystem(gaz, eco_config.scaled(0.08));
  const topology::GroundTruthLocator truth{eco, gaz};
  const geodb::SyntheticGeoDatabase primary{"geoip-city", truth, {}, 0xaaaa};
  const geodb::SyntheticGeoDatabase secondary{"ip2location", truth, {}, 0xbbbb};
  const auto rib = bgp::RibSnapshot::from_ecosystem(eco);
  const bgp::IpToAsMapper mapper{rib};
  const core::EyeballPipeline pipeline{gaz, primary, secondary, mapper};

  p2p::CrawlerConfig crawl_config;
  crawl_config.coverage = 0.25;
  const auto crawl = p2p::Crawler{eco, gaz, crawl_config}.crawl();
  const auto dataset = pipeline.build_dataset(crawl.samples);

  std::cout << "surveying " << dataset.stats().final_ases << " eyeball ASes ("
            << util::with_commas((long long)dataset.stats().final_peers)
            << " conditioned peers)\n\n";

  // Analyze every AS on the shared pool (0 = one chunk per hardware
  // thread); results come back in dataset order, identical to the serial
  // per-AS loop.
  const auto analyses = pipeline.analyze_all(dataset.ases(), 0);

  // Sort by size for a readable report.
  std::vector<std::size_t> order(analyses.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto ases = dataset.ases();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ases[a].peers.size() > ases[b].peers.size();
  });

  util::TextTable table{{"AS", "peers", "level", "region", "area km^2", "PoPs",
                         "top PoP cities (density)"}};
  for (const auto index : order) {
    const auto& as = ases[index];
    const auto& analysis = analyses[index];
    std::string top;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, analysis.pops.pops.size()); ++i) {
      if (i > 0) top += ", ";
      top += std::string{gaz.city(analysis.pops.pops[i].city).name} + " (" +
             util::fixed(analysis.pops.pops[i].score, 2) + ")";
    }
    table.add_row({net::to_string(as.asn),
                   util::with_commas((long long)as.peers.size()),
                   std::string{topology::to_string(analysis.classification.level)},
                   analysis.classification.dominant_region,
                   util::with_commas((long long)analysis.footprint.contour.total_area_km2()),
                   std::to_string(analysis.pops.pops.size()), top});
  }
  std::cout << table;
  return 0;
}
